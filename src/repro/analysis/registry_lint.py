"""registry-lint: the name registries are closed, unique, documented.

Three properties keep the registry layer trustworthy:

1. **Reachability** — every ``register(...)`` / loader-``setdefault``
   call site in the source tree must live in a module reachable from
   :mod:`repro.registry`'s imports (including the lazy loader imports).
   Registrations are per-process (see the registry module docstring);
   an entry registered from a module nothing imports exists in some
   processes and not in the jobs workers, which corrupts content-hashed
   cache keys that embed only the *name*.
2. **Uniqueness** — the built-in tables are built with dict
   comprehensions and ``setdefault``, both of which *silently collapse*
   duplicate names.  The checker compares the static entry count of the
   ``POLICIES`` comprehension and ``CANONICAL_SCENARIOS`` list against
   the loaded registry sizes.
3. **Documentation** — every registered name of every kind must appear
   backticked in ``docs/API.md`` (the names *are* the public API: specs,
   CLI flags and cache keys all speak them).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.base import (Finding, SRC_ROOT, dotted_name,
                                 parse_file, rel)

CHECKER = "registry-lint"

_DOC = SRC_ROOT.parent / "docs" / "API.md"
_ROOT_MODULE = "repro.registry"


def _module_name(path: Path, root: Path) -> str:
    relp = path.relative_to(root).with_suffix("")
    parts = list(relp.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _module_path(mod: str, root: Path) -> Path | None:
    base = root.joinpath(*mod.split("."))
    for cand in (base.with_suffix(".py"), base / "__init__.py"):
        if cand.is_file():
            return cand
    return None


def _imported_modules(tree: ast.Module) -> set[str]:
    """Every module name importable from ``tree`` (function-level too)."""
    mods: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mods.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module:
            mods.add(node.module)
            for alias in node.names:
                # ``from pkg import sub`` may name a submodule
                mods.add(f"{node.module}.{alias.name}")
    return mods


def _import_closure(root_mod: str, root: Path) -> set[str]:
    closure: set[str] = set()
    stack = [root_mod]
    while stack:
        mod = stack.pop()
        if mod in closure:
            continue
        path = _module_path(mod, root)
        if path is None:
            continue
        closure.add(mod)
        # importing pkg.sub imports pkg (and its __init__ imports)
        parts = mod.split(".")
        stack.extend(".".join(parts[:i]) for i in range(1, len(parts)))
        stack.extend(m for m in _imported_modules(parse_file(path))
                     if m.split(".")[0] == parts[0])
    return closure


def _register_sites(tree: ast.Module) -> list[int]:
    """Lines of register()/loader-setdefault call sites in one module."""
    lines: list[int] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        last = name.split(".")[-1]
        if last == "register" or (last == "setdefault"
                                  and "_entries" in name):
            lines.append(node.lineno)
    return lines


def _static_policy_count(root: Path) -> int | None:
    path = _module_path("repro.policies", root)
    if path is None:
        return None
    for node in ast.walk(parse_file(path)):
        target = None
        if isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if (isinstance(target, ast.Name) and target.id == "POLICIES"
                and isinstance(value, ast.DictComp)
                and isinstance(value.generators[0].iter,
                               (ast.Tuple, ast.List))):
            return len(value.generators[0].iter.elts)
    return None


def check(doc_path: Path | None = None,
          src_root: Path | None = None) -> list[Finding]:
    """Run registry-lint (default: the installed tree + docs/API.md)."""
    doc_path = doc_path or _DOC
    src_root = src_root or SRC_ROOT
    findings: list[Finding] = []

    from repro import registry

    # 1. reachability of registration call sites
    closure = _import_closure(_ROOT_MODULE, src_root)
    for path in sorted((src_root / "repro").rglob("*.py")):
        mod = _module_name(path, src_root)
        if mod in closure:
            continue
        for line in _register_sites(parse_file(path)):
            findings.append(Finding(
                CHECKER, rel(path), line,
                f"registration call in {mod}, which is not reachable "
                f"from {_ROOT_MODULE} imports — the entry would exist "
                f"in some processes and not in jobs workers"))

    # 2. silent-collapse uniqueness checks
    static_n = _static_policy_count(src_root)
    if static_n is not None and static_n != len(registry.policies):
        findings.append(Finding(
            CHECKER, "src/repro/policies/__init__.py", 1,
            f"POLICIES lists {static_n} classes but only "
            f"{len(registry.policies)} distinct names registered — "
            f"two classes share a name"))
    try:
        from repro.perf.scenarios import CANONICAL_SCENARIOS
    except ImportError:
        pass
    else:
        if len({sc.name for sc in CANONICAL_SCENARIOS}) != len(
                CANONICAL_SCENARIOS):
            findings.append(Finding(
                CHECKER, "src/repro/perf/scenarios.py", 1,
                "CANONICAL_SCENARIOS contains duplicate scenario names"))

    # 3. every registered name is documented (backticked) in API.md
    doc_text = doc_path.read_text(encoding="utf-8") if doc_path.exists() \
        else ""
    for _kind, reg in sorted(registry.KINDS.items()):
        for name in reg.names():
            if f"`{name}`" not in doc_text:
                findings.append(Finding(
                    CHECKER, rel(doc_path), 1,
                    f"registered {reg.kind} name {name!r} is not "
                    f"documented (backticked) in {rel(doc_path)}"))
    return findings
