"""determinism-lint: no ambient entropy in engine or policy code.

The jobs layer content-hashes a :class:`~repro.api.RunSpec` and reuses
cached results forever, and the golden matrix pins simulations
bit-for-bit — both collapse the moment an engine path consults the wall
clock, module-level (unseeded) ``random``, or the iteration order of an
unordered ``set``.  This checker flags the constructs inside the engine
packages:

* calls into :mod:`time` (``time.time`` and friends) and
  ``datetime.now`` / ``datetime.utcnow``;
* calls through the ``random`` *module* (a ``random.Random(seed)``
  instance is fine — the violation is the process-global generator,
  which is unseeded and shared);
* ``for``-loops and comprehensions iterating directly over a ``set``
  display, ``set``/``frozenset`` call, or set comprehension, unless
  wrapped in ``sorted(...)`` — set order is salted per process, so any
  event scheduling fed from one diverges across runs.

Pure-AST analysis cannot prove a *named* set is iterated
order-dependently (counting its elements is fine), so the iteration rule
only fires on syntactically-evident set expressions; the allowlist
below documents accepted instances should one ever be needed.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.base import (Finding, dotted_name, package_files,
                                 parse_file, rel)

CHECKER = "determinism-lint"

#: ``(path-suffix, line)`` pairs accepted after review; empty today.
ALLOWED_SITES: frozenset[tuple[str, int]] = frozenset()

_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
}

#: Names bound to the :mod:`random` module by a plain import; calling
#: through them hits the unseeded process-global generator.
_RANDOM_MODULE = "random"

#: The one construction allowed through the module: a seeded instance.
_RANDOM_CLASSES = {"Random", "SystemRandom"}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _check_tree(tree: ast.Module, path: Path) -> list[Finding]:
    findings: list[Finding] = []
    rpath = rel(path)

    def flag(line: int, message: str) -> None:
        if (rpath, line) not in ALLOWED_SITES:
            findings.append(Finding(CHECKER, rpath, line, message))

    random_names = {
        alias.asname or alias.name
        for node in ast.walk(tree) if isinstance(node, ast.Import)
        for alias in node.names if alias.name == _RANDOM_MODULE}
    random_names.add(_RANDOM_MODULE)

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _CLOCK_CALLS:
                flag(node.lineno,
                     f"wall-clock call {name}() in engine code — "
                     f"simulations must be pure functions of their spec")
            elif (name is not None and "." in name
                  and name.rsplit(".", 1)[0] in random_names
                  and name.rsplit(".", 1)[1] not in _RANDOM_CLASSES):
                flag(node.lineno,
                     f"{name}() uses the unseeded process-global random "
                     f"generator; construct a seeded random.Random "
                     f"instead")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                flag(node.lineno,
                     "iteration over an unordered set in engine code — "
                     "wrap in sorted(...) to pin the order")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    flag(gen.iter.lineno,
                         "comprehension over an unordered set in engine "
                         "code — wrap in sorted(...) to pin the order")
    return findings


def check(files: Sequence[Path] | None = None) -> list[Finding]:
    """Run determinism-lint over ``files`` (default: engine packages)."""
    if files is None:
        files = package_files()
    findings: list[Finding] = []
    for path in files:
        findings.extend(_check_tree(parse_file(path), path))
    return findings
