"""Project-invariant static checkers (``repro lint``).

The repo's performance and reproducibility story rests on structural
invariants nothing in Python enforces: ``__dict__``-free hot classes,
two engines with identical hook/stat surfaces, an elision table that
matches the policy base class, deterministic engine code, and closed
name registries.  Each checker here pins one of those invariants with a
pure-AST analysis (registry-lint additionally loads the registries);
``repro lint`` runs them all and exits non-zero on any finding.

Checkers are registered under the ``checkers`` registry kind, so
``repro list checkers`` enumerates them and out-of-tree checkers can be
added at runtime with ``repro.registry.register("checker", ...)``.  A
checker is any callable ``() -> list[Finding]``; see ``docs/ANALYSIS.md``
for the catalog and for how to add one.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.analysis import (determinism_lint, engine_parity, hook_elision,
                            registry_lint, slots_lint)
from repro.analysis.base import Finding

#: Built-in checker name -> zero-argument callable returning findings.
CHECKERS: dict[str, Callable[[], list[Finding]]] = {
    slots_lint.CHECKER: slots_lint.check,
    determinism_lint.CHECKER: determinism_lint.check,
    engine_parity.CHECKER: engine_parity.check,
    hook_elision.CHECKER: hook_elision.check,
    registry_lint.CHECKER: registry_lint.check,
}


def run_checkers(names: Iterable[str] | None = None) -> list[Finding]:
    """Run the named checkers (default: all registered) and merge findings.

    Lookup goes through :data:`repro.registry` so runtime-registered
    checkers run too; unknown names raise
    :class:`~repro.registry.RegistryError`.
    """
    from repro import registry     # late: registry seeds itself from here
    if names is None:
        names = registry.checkers.names()
    findings: list[Finding] = []
    for name in names:
        findings.extend(registry.checkers.get(name)())
    return findings


__all__ = ["CHECKERS", "Finding", "run_checkers"]
