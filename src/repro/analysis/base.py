"""Shared infrastructure for the :mod:`repro.analysis` checkers.

Every checker is a function ``check(...) -> list[Finding]`` whose default
arguments point at the real source tree; tests aim the same function at
known-bad fixture files instead.  All path-handling and AST plumbing
lives here so the checkers stay pure analyses.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import asdict, dataclass
from pathlib import Path

#: ``.../src`` — the import root this package was loaded from.
SRC_ROOT = Path(__file__).resolve().parents[2]

#: The repository checkout (``docs/``, ``tests/`` live here).  Only
#: meaningful for a source checkout; checkers that need it degrade to a
#: finding-free pass when the files are absent.
REPO_ROOT = SRC_ROOT.parent

#: The packages whose classes are performance-critical: everything the
#: engine touches per simulated cycle.  slots-lint and determinism-lint
#: police exactly these.
ENGINE_PACKAGES = ("repro/pipeline", "repro/policies", "repro/runahead")


@dataclass(frozen=True, slots=True)
class Finding:
    """One checker violation, pointing at a file and line."""

    checker: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.checker}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return asdict(self)


def rel(path: Path) -> str:
    """``path`` relative to the repo root when possible (for messages)."""
    try:
        return str(path.resolve().relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def parse_file(path: Path) -> ast.Module:
    """Parse one source file (UTF-8) into an AST."""
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def package_files(packages: Iterable[str] = ENGINE_PACKAGES,
                  root: Path = SRC_ROOT) -> list[Path]:
    """All ``.py`` files of the given packages, sorted for determinism."""
    files: list[Path] = []
    for pkg in packages:
        files.extend(sorted((root / pkg).glob("*.py")))
    return files


def walk_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Top-level and nested class definitions, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def string_elements(node: ast.AST) -> list[str] | None:
    """The string items of a literal tuple/list, or ``None``.

    Accepts a bare string constant too (``__slots__ = "x"`` is legal
    Python); returns ``None`` for anything non-literal so callers can
    treat a computed ``__slots__`` as opaque.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            out.append(elt.value)
        return out
    return None
