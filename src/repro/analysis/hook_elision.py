"""hook-elision-lint: the ``_is_default_hook`` table matches reality.

Both engines skip per-instruction policy-hook calls when the policy
keeps :class:`~repro.policies.base.FetchPolicy`'s no-op default — but
the "is it the default?" test is a marker *assigned by hand* at the
bottom of ``base.py``.  Two drifts are possible and both are silent:

* a no-op default hook without a marker — every policy pays the call
  forever (pure, permanent perf loss, invisible to the golden matrix);
* a marker on a hook whose default is *not* a no-op — the engines
  elide a call that does real work (an architectural bug the golden
  matrix would catch only for the sampled policies).

This checker recomputes the no-op default set from the AST (a method
body that is just a docstring, or a docstring plus ``return
<constant>``) and demands exact equality with the marked set.  It also
verifies every ``getattr(..., "_is_default_hook", ...)`` probe in the
engines targets a marked hook (an unmarked probe is dead elision
machinery), and that every ``_is_base_impl`` /
``_identity_keyed_cleanup`` marker targets a method that exists.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.base import (Finding, SRC_ROOT, dotted_name,
                                 parse_file, rel)

CHECKER = "hook-elision-lint"

_BASE = SRC_ROOT / "repro" / "policies" / "base.py"
_ENGINES = (SRC_ROOT / "repro" / "pipeline" / "core.py",
            SRC_ROOT / "repro" / "pipeline" / "soa.py")

#: The policy base class whose defaults define the elision table.
BASE_CLASS = "FetchPolicy"

_MARKERS = ("_is_default_hook", "_is_base_impl", "_identity_keyed_cleanup")


def _is_noop_body(body: list[ast.stmt]) -> bool:
    """True for ``docstring`` or ``docstring + return <constant>``."""
    stmts = list(body)
    if (stmts and isinstance(stmts[0], ast.Expr)
            and isinstance(stmts[0].value, ast.Constant)
            and isinstance(stmts[0].value.value, str)):
        stmts = stmts[1:]
    if not stmts:
        return True
    if len(stmts) == 1 and isinstance(stmts[0], ast.Return):
        val = stmts[0].value
        return val is None or isinstance(val, ast.Constant)
    return False


def _default_hooks(tree: ast.Module) -> dict[str, int]:
    """No-op-default method name -> line, for :data:`BASE_CLASS`."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == BASE_CLASS:
            return {
                stmt.name: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
                and not stmt.name.startswith("__")
                and _is_noop_body(stmt.body)}
    return {}


def _markers(tree: ast.Module) -> dict[str, set[tuple[str, str, int]]]:
    """marker -> {(class, method, line)} over module-level assignments."""
    found: dict[str, set[tuple[str, str, int]]] = {m: set()
                                                   for m in _MARKERS}
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        for tgt in targets:
            if not (isinstance(tgt, ast.Attribute)
                    and tgt.attr in _MARKERS):
                continue
            owner = dotted_name(tgt.value)
            if owner is None or "." not in owner:
                continue
            cls_name, meth = owner.rsplit(".", 1)
            found[tgt.attr].add((cls_name.split(".")[-1], meth,
                                 tgt.lineno))
    return found


def _class_methods(tree: ast.Module) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            meths = out.setdefault(node.name, set())
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    meths.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    # class-level borrow: ``meth = Other._meth``
                    for t in stmt.targets:
                        if isinstance(t, ast.Name):
                            meths.add(t.id)
    return out


def _elision_probes(tree: ast.Module) -> list[tuple[str, int]]:
    """(probed method name, line) of every _is_default_hook getattr."""
    probes: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and dotted_name(node.func) == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value == "_is_default_hook"
                and isinstance(node.args[0], ast.Attribute)):
            probes.append((node.args[0].attr, node.lineno))
    return probes


def check(base_path: Path | None = None,
          engine_files: Sequence[Path] | None = None) -> list[Finding]:
    """Run hook-elision-lint (default: the real base.py + engines)."""
    base_path = base_path or _BASE
    engine_files = _ENGINES if engine_files is None else engine_files
    tree = parse_file(base_path)
    findings: list[Finding] = []
    rbase = rel(base_path)

    defaults = _default_hooks(tree)
    markers = _markers(tree)
    marked = {meth for cls, meth, _ in markers["_is_default_hook"]
              if cls == BASE_CLASS}

    for meth in sorted(set(defaults) - marked):
        findings.append(Finding(
            CHECKER, rbase, defaults[meth],
            f"{BASE_CLASS}.{meth} has a no-op default body but no "
            f"_is_default_hook marker — every policy pays the "
            f"per-instruction call for nothing"))
    for cls, meth, line in sorted(markers["_is_default_hook"]):
        if cls != BASE_CLASS:
            continue
        if meth not in defaults:
            findings.append(Finding(
                CHECKER, rbase, line,
                f"{BASE_CLASS}.{meth} is marked _is_default_hook but its "
                f"default body is not a no-op — the engines would elide "
                f"a call that does real work"))

    methods = _class_methods(tree)
    for marker in ("_is_base_impl", "_identity_keyed_cleanup"):
        for cls, meth, line in sorted(markers[marker]):
            if meth not in methods.get(cls, set()):
                findings.append(Finding(
                    CHECKER, rbase, line,
                    f"{marker} marker targets {cls}.{meth}, which is not "
                    f"defined on {cls}"))

    for engine in engine_files:
        if not engine.exists():
            continue
        for meth, line in _elision_probes(parse_file(engine)):
            if meth not in marked:
                findings.append(Finding(
                    CHECKER, rel(engine), line,
                    f"engine probes _is_default_hook on {meth!r}, which "
                    f"is never marked on {BASE_CLASS} — the elision can "
                    f"never fire"))
    return findings
