"""engine-parity-lint: the SoA engine mirrors the object engine.

The struct-of-arrays backend (``soa.py``) re-implements the object
engine's hot methods and must stay *architecturally identical* — the
34-cell golden matrix pins the numbers, but only for the policies and
stats it samples.  This checker pins the structural contract directly:

1. **Hook parity** — the set of policy hooks the two files invoke
   (``self.policy.on_X`` reads plus the ``_policy_*`` elision
   attributes bound in ``SMTCore.__init__``) must be equal.  A hook
   called by one engine and not the other means one backend silently
   ignores a whole policy mechanism.
2. **Stat parity** — the set of golden-relevant stat fields written by
   the methods ``soa.py`` replaces must equal the set written anywhere
   in ``soa.py``.  (Fields written only by *inherited* methods —
   ``advance_to``'s cycle refresh, stall settlement — are shared code
   and out of scope by construction.)  The replaced-method set is read
   from the SoA class body itself: the ``NotImplementedError`` guard
   stubs make it self-describing.
3. **Column coverage** — every ``DynInstr`` ``__slots__`` entry must map
   to a ``SoAView`` accessor: an explicit property, a ``_col_*`` column
   property from the generation loop, or a packed flag bit.  A new
   DynInstr field without a column is invisible to the SoA engine.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.base import (Finding, SRC_ROOT, dotted_name,
                                 parse_file, rel, string_elements)

CHECKER = "engine-parity-lint"

_PIPELINE = SRC_ROOT / "repro" / "pipeline"

#: The policy hook vocabulary (everything FetchPolicy exposes to cores).
HOOKS = frozenset({
    "fetch_order", "fetch_pending", "on_fetch", "on_ll_detect",
    "on_load_complete", "can_dispatch", "on_resource_stall",
})

#: Elision attributes bound in ``SMTCore.__init__`` -> the hook each
#: one stands for (reading the attribute *is* invoking the hook).
POLICY_ATTR_HOOKS = {
    "_policy_fetch_order": "fetch_order",
    "_policy_fetch_pending": "fetch_pending",
    "_policy_on_fetch": "on_fetch",
    "_policy_on_fetch_load": "on_fetch",
    "_policy_on_load_complete": "on_load_complete",
    "_policy_can_dispatch": "can_dispatch",
    "_policy_on_resource_stall": "on_resource_stall",
}


def _hooks_used(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            if node.attr in HOOKS:
                used.add(node.attr)
            elif node.attr in POLICY_ATTR_HOOKS:
                used.add(POLICY_ATTR_HOOKS[node.attr])
        elif isinstance(node, ast.Constant) and node.value in HOOKS:
            # getattr(cls.on_X, ...) elision probes name hooks as strings
            used.add(node.value)
    return used


def _hooks_used_c(text: str) -> set[str]:
    """Hook call sites in the C engine source (text scan, not AST).

    The compiled loop reaches each hook through the same artifacts the
    Python engines use — the ``_policy_*`` elision slots (resolved by
    name in its offset table) and the literal hook attribute names it
    interns — so their spellings appearing in the source *is* the
    call-site set.
    """
    used: set[str] = set()
    for attr, hook in POLICY_ATTR_HOOKS.items():
        if f'"{attr}"' in text:
            used.add(hook)
    for hook in HOOKS:
        if f'"{hook}"' in text:
            used.add(hook)
    return used


def _stat_fields(stats_tree: ast.Module) -> set[str]:
    """All dataclass field names of stats.py (the stat universe)."""
    fields: set[str] = set()
    for node in ast.walk(stats_tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    fields.add(stmt.target.id)
    return fields


def _stat_writes(func: ast.AST, universe: set[str]) -> set[str]:
    """Stat fields stored under ``func``, with local alias tracking.

    Catches both direct ``<expr>.stats.X = ...`` stores and the hot-path
    idiom ``st = ts.stats; st.X += 1`` (any local assigned from an
    expression ending in ``.stats``).
    """
    aliases: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt, val = node.targets[0], node.value
            name = dotted_name(val)
            if (isinstance(tgt, ast.Name) and name is not None
                    and (name == "stats" or name.endswith(".stats"))):
                aliases.add(tgt.id)

    written: set[str] = set()
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for tgt in targets:
            if not isinstance(tgt, ast.Attribute) or tgt.attr not in universe:
                continue
            base = tgt.value
            base_name = dotted_name(base)
            if base_name is not None and (
                    base_name in aliases or base_name == "stats"
                    or base_name.endswith(".stats")):
                written.add(tgt.attr)
    return written


def _methods(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Method name -> def node, over every class in the module."""
    out: dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out[stmt.name] = stmt
    return out


def _soa_view_accessors(tree: ast.Module) -> set[str]:
    """Every attribute name SoAView exposes (explicit + generated)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "SoAView":
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            names.add(tgt.id)
        elif isinstance(node, ast.For):
            # for _name, _x in ((...), ...): setattr(SoAView, _name, ...)
            is_view_loop = any(
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and dotted_name(stmt.value.func) == "setattr"
                and stmt.value.args
                and dotted_name(stmt.value.args[0]) == "SoAView"
                for stmt in node.body)
            if not is_view_loop or not isinstance(node.iter,
                                                  (ast.Tuple, ast.List)):
                continue
            for elt in node.iter.elts:
                if (isinstance(elt, (ast.Tuple, ast.List)) and elt.elts
                        and isinstance(elt.elts[0], ast.Constant)
                        and isinstance(elt.elts[0].value, str)):
                    names.add(elt.elts[0].value)
    return names


def _dyninstr_slots(tree: ast.Module) -> list[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "DynInstr":
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Name)
                                and t.id == "__slots__"
                                for t in stmt.targets)):
                    return string_elements(stmt.value) or []
    return []


def check(core_path: Path | None = None,
          soa_path: Path | None = None,
          dyninstr_path: Path | None = None,
          stats_path: Path | None = None,
          cext_path: Path | None = None,
          cext_c_path: Path | None = None) -> list[Finding]:
    """Run engine-parity-lint (default: the real pipeline modules)."""
    core_path = core_path or _PIPELINE / "core.py"
    soa_path = soa_path or _PIPELINE / "soa.py"
    dyninstr_path = dyninstr_path or _PIPELINE / "dyninstr.py"
    stats_path = stats_path or _PIPELINE / "stats.py"
    cext_path = cext_path or _PIPELINE / "cext.py"
    cext_c_path = cext_c_path or _PIPELINE / "_cext_engine.c"
    core_tree = parse_file(core_path)
    soa_tree = parse_file(soa_path)
    findings: list[Finding] = []

    # 1. hook parity
    core_hooks = _hooks_used(core_tree)
    soa_hooks = _hooks_used(soa_tree)
    for hook in sorted(core_hooks - soa_hooks):
        findings.append(Finding(
            CHECKER, rel(soa_path), 1,
            f"policy hook {hook!r} is invoked by {rel(core_path)} but "
            f"never by the SoA engine"))
    for hook in sorted(soa_hooks - core_hooks):
        findings.append(Finding(
            CHECKER, rel(core_path), 1,
            f"policy hook {hook!r} is invoked by {rel(soa_path)} but "
            f"never by the object engine"))

    # 1b. hook parity for the compiled backend: the cext driver + the C
    # engine together must reach exactly the hooks the object engine
    # does.  (The driver's Python side contributes the elision markers
    # it caches; the C side contributes every offset-table/interned
    # call site.)
    if cext_path.exists() and cext_c_path.exists():
        cext_hooks = (_hooks_used(parse_file(cext_path))
                      | _hooks_used_c(cext_c_path.read_text()))
        for hook in sorted(core_hooks - cext_hooks):
            findings.append(Finding(
                CHECKER, rel(cext_c_path), 1,
                f"policy hook {hook!r} is invoked by {rel(core_path)} "
                f"but never by the cext backend"))
        for hook in sorted(cext_hooks - core_hooks):
            findings.append(Finding(
                CHECKER, rel(core_path), 1,
                f"policy hook {hook!r} is invoked by the cext backend "
                f"but never by the object engine"))

    # 2. stat-write parity over the replaced methods
    universe = _stat_fields(parse_file(stats_path))
    core_methods = _methods(core_tree)
    replaced = set(_methods(soa_tree))
    required: set[str] = set()
    for name in replaced & set(core_methods):
        required |= _stat_writes(core_methods[name], universe)
    actual: set[str] = set()
    for func in _methods(soa_tree).values():
        actual |= _stat_writes(func, universe)
    for fld in sorted(required - actual):
        findings.append(Finding(
            CHECKER, rel(soa_path), 1,
            f"stat field {fld!r} is written by an object-engine method "
            f"the SoA engine replaces, but never by the SoA engine"))
    for fld in sorted(actual - required):
        findings.append(Finding(
            CHECKER, rel(core_path), 1,
            f"stat field {fld!r} is written by the SoA engine but not "
            f"by the object-engine methods it replaces"))

    # 3. DynInstr slot -> SoAView accessor coverage
    dyn_tree = parse_file(dyninstr_path)
    accessors = _soa_view_accessors(dyn_tree)
    for slot in _dyninstr_slots(dyn_tree):
        if slot not in accessors:
            findings.append(Finding(
                CHECKER, rel(dyninstr_path), 1,
                f"DynInstr slot {slot!r} has no SoAView accessor "
                f"(column property, flag bit, or explicit property)"))
    return findings
