"""MLP distance predictor (Section 4.2).

A 2K-entry table indexed by the long-latency load PC; each entry stores the
most recently measured MLP distance for that static load (a last-value
predictor, log2(ROB/threads) = 7 bits per entry, 14 Kbits total).

The predictor also scores itself at every training update, producing the
statistics of Figures 7 and 8: the stored value at update time *is* the
prediction that would have been made for this occurrence, and the incoming
measurement is the ground truth.
"""

from __future__ import annotations


class MLPDistancePredictor:
    __slots__ = ("_table", "_entries", "_max_distance",
                 "true_pos", "true_neg", "false_pos", "false_neg",
                 "far_enough", "too_short", "lookups")

    def __init__(self, entries: int = 2048, max_distance: int = 127):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if max_distance <= 0:
            raise ValueError("max_distance must be positive")
        self._entries = entries
        self._max_distance = max_distance
        self._table: dict[int, int] = {}
        # Figure 7: binary MLP / no-MLP classification outcomes.
        self.true_pos = 0
        self.true_neg = 0
        self.false_pos = 0
        self.false_neg = 0
        # Figure 8: is the predicted distance at least the actual distance?
        self.far_enough = 0
        self.too_short = 0
        self.lookups = 0

    def predict(self, pc: int, default: int = 0) -> int:
        """Predicted MLP distance for a long-latency load at ``pc``."""
        self.lookups += 1
        return self._table.get(pc % self._entries, default)

    def train(self, pc: int, distance: int) -> None:
        """Insert a freshly measured MLP distance (from the LLSR)."""
        distance = min(distance, self._max_distance)
        idx = pc % self._entries
        predicted = self._table.get(idx, 0)
        if predicted > 0:
            if distance > 0:
                self.true_pos += 1
            else:
                self.false_pos += 1
        else:
            if distance > 0:
                self.false_neg += 1
            else:
                self.true_neg += 1
        if predicted >= distance:
            self.far_enough += 1
        else:
            self.too_short += 1
        self._table[idx] = distance

    # ------------------------------------------------------------------ #
    # accuracy summaries (Figures 7 and 8)
    # ------------------------------------------------------------------ #

    @property
    def updates(self) -> int:
        return self.true_pos + self.true_neg + self.false_pos + self.false_neg

    @property
    def binary_accuracy(self) -> float:
        total = self.updates
        return (self.true_pos + self.true_neg) / total if total else 1.0

    @property
    def distance_accuracy(self) -> float:
        total = self.far_enough + self.too_short
        return self.far_enough / total if total else 1.0

    def classification_fractions(self) -> dict[str, float]:
        """TP/TN/FP/FN fractions as plotted in Figure 7."""
        total = self.updates or 1
        return {
            "true_pos": self.true_pos / total,
            "true_neg": self.true_neg / total,
            "false_pos": self.false_pos / total,
            "false_neg": self.false_neg / total,
        }
