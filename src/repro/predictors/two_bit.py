"""Two-bit saturating-counter load miss predictor (El-Moursy & Albonesi 2003).

The counter moves towards "miss" on observed long-latency misses and towards
"hit" on hits; the load is predicted long-latency in the upper half.
"""

from __future__ import annotations


class TwoBitMissPredictor:
    __slots__ = ("_table", "_entries", "lookups", "predicted_ll")

    def __init__(self, entries: int = 2048, counter_bits: int = 2):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self._entries = entries
        self._table: dict[int, int] = {}
        self.lookups = 0
        self.predicted_ll = 0

    def predict(self, pc: int) -> bool:
        self.lookups += 1
        prediction = self._table.get(pc % self._entries, 0) >= 2
        if prediction:
            self.predicted_ll += 1
        return prediction

    def train(self, pc: int, long_latency: bool) -> None:
        idx = pc % self._entries
        counter = self._table.get(idx, 0)
        if long_latency:
            if counter < 3:
                self._table[idx] = counter + 1
        else:
            if counter > 0:
                self._table[idx] = counter - 1
