"""Last-value long-latency load predictor (explored alternative, §4.1).

Predicts that a static load repeats its most recent hit/miss outcome.
"""

from __future__ import annotations


class LastValuePredictor:
    __slots__ = ("_table", "_entries", "lookups", "predicted_ll")

    def __init__(self, entries: int = 2048, counter_bits: int = 1):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self._entries = entries
        self._table: dict[int, bool] = {}
        self.lookups = 0
        self.predicted_ll = 0

    def predict(self, pc: int) -> bool:
        self.lookups += 1
        prediction = self._table.get(pc % self._entries, False)
        if prediction:
            self.predicted_ll += 1
        return prediction

    def train(self, pc: int, long_latency: bool) -> None:
        self._table[pc % self._entries] = long_latency
