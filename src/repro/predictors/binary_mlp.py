"""Binary MLP predictor — alternatives (c) and (e) of Section 6.5.

One bit per entry: did the previous long-latency occurrence of this static
load exhibit MLP (a nonzero MLP distance)?

The cold-start default is *optimistic* (assume MLP): the policies built on
this predictor flush a thread when no MLP is predicted, so a pessimistic
default would flush on first sight of every static load — and because the
predictor trains from the commit stream, a thread flushed into starvation
can never train its way out of it (a cold-start spiral we observed on
miss-heavy pairs).  Assuming MLP until evidence says otherwise matches the
policy's intent: flush only on observed-isolated misses.
"""

from __future__ import annotations


class BinaryMLPPredictor:
    __slots__ = ("_table", "_entries", "lookups")

    def __init__(self, entries: int = 2048):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self._entries = entries
        self._table: dict[int, bool] = {}
        self.lookups = 0

    def predict(self, pc: int) -> bool:
        """True when MLP is expected for this long-latency load."""
        self.lookups += 1
        return self._table.get(pc % self._entries, True)

    def train(self, pc: int, distance: int) -> None:
        self._table[pc % self._entries] = distance > 0
