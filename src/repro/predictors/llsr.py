"""Long-latency shift register (LLSR) — Figure 3 of the paper.

One LLSR per thread, with ``ROB size / number of threads`` entries.  Every
committed instruction shifts the register one position from tail to head and
inserts a bit at the tail: 1 for a long-latency load, 0 otherwise; the load
PC is tracked alongside.  When a 1 exits at the head, the **MLP distance**
is the position of the last (furthest) 1 in the register, read from head to
tail — the number of instructions one must fetch past the long-latency load
to expose all the MLP available within the ROB window (0 = isolated miss).
The measured distance trains the MLP distance predictor.

Section 4.2 notes that this implementation "does not make a distinction
between dependent and independent long-latency loads", overestimating the
MLP distance when the trailing loads depend on the head load, and names
excluding dependent loads as future work.  ``exclude_dependent=True``
implements that extension: a long-latency load known to depend on an
earlier long-latency load inserts a 0 instead of a 1, so it neither counts
as an MLP companion nor triggers a measurement of its own.  Dependent
misses cannot overlap with their producers, so the distances measured this
way reflect only *exploitable* MLP.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable


class LLSR:
    """Commit-stream observer that measures MLP distances."""

    __slots__ = ("length", "_bits", "_pcs", "_on_measure", "measured",
                 "exclude_dependent", "suppressed")

    def __init__(self, length: int,
                 on_measure: Callable[[int, int], None] | None = None,
                 exclude_dependent: bool = False):
        """``on_measure(pc, distance)`` fires when a 1 exits the head."""
        if length < 2:
            raise ValueError("LLSR needs at least two entries")
        self.length = length
        self._bits: deque[int] = deque()
        self._pcs: deque[int] = deque()
        self._on_measure = on_measure
        self.measured: list[tuple[int, int]] = []
        self.exclude_dependent = exclude_dependent
        #: Long-latency loads demoted to 0-bits by dependence filtering.
        self.suppressed = 0

    def commit(self, is_long_latency_load: bool, pc: int = -1,
               dependent: bool = False) -> int | None:
        """Shift one committed instruction in; returns a measured distance.

        ``dependent`` marks a long-latency load whose address depends
        (transitively) on an earlier long-latency load; it is demoted to a
        0-bit when dependence filtering is enabled.  The return value is
        the MLP distance of the long-latency load that exited the head
        this commit, or ``None`` when no 1 exited.
        """
        insert = is_long_latency_load
        if insert and dependent and self.exclude_dependent:
            insert = False
            self.suppressed += 1
        bits = self._bits
        bits.append(1 if insert else 0)
        self._pcs.append(pc if insert else -1)
        if len(bits) <= self.length:
            return None
        head_bit = bits.popleft()
        head_pc = self._pcs.popleft()
        if not head_bit:
            return None
        distance = self._last_one_position()
        self.measured.append((head_pc, distance))
        if self._on_measure is not None:
            self._on_measure(head_pc, distance)
        return distance

    def _last_one_position(self) -> int:
        """Position (1-based from just past the head) of the furthest 1."""
        bits = self._bits
        for idx in range(len(bits) - 1, -1, -1):
            if bits[idx]:
                return idx + 1
        return 0

    @property
    def occupancy(self) -> int:
        return len(self._bits)
