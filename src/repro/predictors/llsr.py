"""Long-latency shift register (LLSR) — Figure 3 of the paper.

One LLSR per thread, with ``ROB size / number of threads`` entries.  Every
committed instruction shifts the register one position from tail to head and
inserts a bit at the tail: 1 for a long-latency load, 0 otherwise; the load
PC is tracked alongside.  When a 1 exits at the head, the **MLP distance**
is the position of the last (furthest) 1 in the register, read from head to
tail — the number of instructions one must fetch past the long-latency load
to expose all the MLP available within the ROB window (0 = isolated miss).
The measured distance trains the MLP distance predictor.

Section 4.2 notes that this implementation "does not make a distinction
between dependent and independent long-latency loads", overestimating the
MLP distance when the trailing loads depend on the head load, and names
excluding dependent loads as future work.  ``exclude_dependent=True``
implements that extension: a long-latency load known to depend on an
earlier long-latency load inserts a 0 instead of a 1, so it neither counts
as an MLP companion nor triggers a measurement of its own.  Dependent
misses cannot overlap with their producers, so the distances measured this
way reflect only *exploitable* MLP.

Implementation note (perf): the register is a fixed ring buffer over two
preallocated lists rather than a pair of deques, and the measured distance
comes from a running "commit index of the most recent 1" watermark instead
of a tail-to-head scan — ``commit`` is O(1) even on measuring commits.
The distance algebra: with ``total`` commits shifted in and a register of
``length`` entries, the live window holds commit indices
``total - length + 1 .. total``; a 1 last inserted at commit index ``w``
sits ``w - total + length`` positions past the head (clamped to 0 when it
already left the window).  ``tests/test_predictors.py`` pins this against
the reference shift-register semantics.
"""

from __future__ import annotations

from collections.abc import Callable


class LLSR:
    """Commit-stream observer that measures MLP distances."""

    __slots__ = ("length", "_bits", "_pcs", "_head", "_filled", "_total",
                 "_last_one_total", "_on_measure", "measured",
                 "exclude_dependent", "suppressed")

    def __init__(self, length: int,
                 on_measure: Callable[[int, int], None] | None = None,
                 exclude_dependent: bool = False):
        """``on_measure(pc, distance)`` fires when a 1 exits the head."""
        if length < 2:
            raise ValueError("LLSR needs at least two entries")
        self.length = length
        self._bits = [0] * length
        self._pcs = [-1] * length
        self._head = 0          # ring slot holding the oldest entry
        self._filled = 0        # entries shifted in while still filling
        self._total = 0         # commits shifted in over the LLSR lifetime
        self._last_one_total = 0  # commit index of the most recent 1 (0: none)
        self._on_measure = on_measure
        self.measured: list[tuple[int, int]] = []
        self.exclude_dependent = exclude_dependent
        #: Long-latency loads demoted to 0-bits by dependence filtering.
        self.suppressed = 0

    def commit(self, is_long_latency_load: bool, pc: int = -1,
               dependent: bool = False) -> int | None:
        """Shift one committed instruction in; returns a measured distance.

        ``dependent`` marks a long-latency load whose address depends
        (transitively) on an earlier long-latency load; it is demoted to a
        0-bit when dependence filtering is enabled.  The return value is
        the MLP distance of the long-latency load that exited the head
        this commit, or ``None`` when no 1 exited.
        """
        insert = is_long_latency_load
        if insert and dependent and self.exclude_dependent:
            insert = False
            self.suppressed += 1
        total = self._total + 1
        self._total = total
        if insert:
            self._last_one_total = total
        bits = self._bits
        length = self.length
        filled = self._filled
        if filled < length:
            bits[filled] = 1 if insert else 0
            self._pcs[filled] = pc if insert else -1
            self._filled = filled + 1
            return None
        head = self._head
        head_bit = bits[head]
        head_pc = self._pcs[head]
        bits[head] = 1 if insert else 0
        self._pcs[head] = pc if insert else -1
        self._head = head + 1 if head + 1 < length else 0
        if not head_bit:
            return None
        distance = self._last_one_total - total + length
        if distance < 0:
            distance = 0
        self.measured.append((head_pc, distance))
        if self._on_measure is not None:
            self._on_measure(head_pc, distance)
        return distance

    def commit_zeros(self, k: int) -> None:
        """Advance by ``k`` consecutive non-long-latency commits at once.

        Semantically identical to ``k`` calls of ``commit(False)`` —
        every 1-bit that exits the head during the advance fires its
        measurement, in order, with the same distance — but the common
        cases collapse to O(1) counter arithmetic: while the register is
        still filling, zero-bits land on slots that are pristine from
        construction, and once the most recent 1 has left the live
        window the ring contents are provably all zero, so the advance
        is a head/total bump with no per-entry work.  The commit stage
        uses this to coalesce retire bursts between long-latency loads
        (see ``SMTCore._commit``).
        """
        length = self.length
        filled = self._filled
        if filled < length:
            take = length - filled
            if take > k:
                take = k
            self._filled = filled + take
            self._total += take
            k -= take
            if not k:
                return
        total = self._total
        last_one = self._last_one_total
        if last_one + length <= total:
            # No 1 left in the live window: zeros shift out, zeros shift
            # in, and every slot already holds (0, -1).
            self._total = total + k
            self._head = (self._head + k) % length
            return
        # Per-step work is owed only while the window still holds a 1;
        # once the most recent 1 has exited (after ``live`` steps) the
        # remaining advance is the O(1) all-zero case again.
        live = last_one + length - total
        tail = k - live if k > live else 0
        k -= tail
        bits = self._bits
        pcs = self._pcs
        head = self._head
        measured = self.measured
        on_measure = self._on_measure
        for _ in range(k):
            total += 1
            if bits[head]:
                head_pc = pcs[head]
                bits[head] = 0
                pcs[head] = -1
                distance = last_one - total + length
                if distance < 0:
                    distance = 0
                measured.append((head_pc, distance))
                if on_measure is not None:
                    on_measure(head_pc, distance)
            head += 1
            if head == length:
                head = 0
        if tail:
            head = (head + tail) % length
            total += tail
        self._head = head
        self._total = total

    @property
    def occupancy(self) -> int:
        return self._filled
