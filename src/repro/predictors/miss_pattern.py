"""Miss pattern predictor for long-latency loads (Limousin et al. 2001).

Figure 2 of the paper: a 2K-entry table indexed by load PC.  Each entry
records (i) the number of hits by the same static load between the two most
recent long-latency misses, and (ii) the number of hits since the last
long-latency miss.  When (ii) reaches (i), the next execution of that load
is predicted long-latency — a last-value predictor on the hit run-length
between misses.  6 bits per entry (12 Kbits total); counters saturate.
"""

from __future__ import annotations


class _Entry:
    __slots__ = ("period", "since")

    def __init__(self) -> None:
        self.period = -1   # hits between the two most recent LL misses
        self.since = 0     # hits since the last LL miss


class MissPatternPredictor:
    """Front-end long-latency load predictor, one table per thread."""

    __slots__ = ("_table", "_entries", "_max_count",
                 "lookups", "predicted_ll")

    def __init__(self, entries: int = 2048, counter_bits: int = 6):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self._entries = entries
        self._max_count = (1 << counter_bits) - 1
        self._table: dict[int, _Entry] = {}
        self.lookups = 0
        self.predicted_ll = 0

    def _entry(self, pc: int) -> _Entry:
        idx = pc % self._entries
        e = self._table.get(idx)
        if e is None:
            e = _Entry()
            self._table[idx] = e
        return e

    def predict(self, pc: int) -> bool:
        """Front-end query: will this load be long-latency?

        Predicts long-latency exactly when the hits-since-last-miss count
        matches the recorded hit run-length (the paper's "in case the
        latter matches the former").  A *saturated* period means the run
        length exceeded the 6-bit counter — the pattern is effectively
        "misses are rare" — so no prediction is made; without this guard a
        saturated entry would predict long-latency forever.
        """
        self.lookups += 1
        e = self._table.get(pc % self._entries)
        if e is None or e.period < 0 or e.period >= self._max_count:
            return False
        prediction = e.since == e.period
        if prediction:
            self.predicted_ll += 1
        return prediction

    def train(self, pc: int, long_latency: bool) -> None:
        """Execute-time update with the load's observed outcome."""
        e = self._entry(pc)
        if long_latency:
            e.period = e.since
            e.since = 0
        else:
            if e.since < self._max_count:
                e.since += 1
