"""The paper's predictors (Section 4).

* Long-latency load predictors queried in the front end:
  :class:`MissPatternPredictor` (Limousin et al., the paper's choice),
  :class:`LastValuePredictor` and :class:`TwoBitMissPredictor`
  (El-Moursy & Albonesi) as the explored alternatives.
* :class:`LLSR` — the long-latency shift register that observes the commit
  stream and measures MLP distances (Figure 3).
* :class:`MLPDistancePredictor` — PC-indexed last-value predictor of the MLP
  distance (Section 4.2).
* :class:`BinaryMLPPredictor` — 1-bit MLP/no-MLP predictor used by the
  alternative policies (c) and (e) of Section 6.5.
"""

from repro.predictors.binary_mlp import BinaryMLPPredictor
from repro.predictors.last_value import LastValuePredictor
from repro.predictors.llsr import LLSR
from repro.predictors.miss_pattern import MissPatternPredictor
from repro.predictors.mlp_distance import MLPDistancePredictor
from repro.predictors.two_bit import TwoBitMissPredictor

LLL_PREDICTORS = {
    "miss_pattern": MissPatternPredictor,
    "last_value": LastValuePredictor,
    "two_bit": TwoBitMissPredictor,
}

__all__ = [
    "BinaryMLPPredictor",
    "LLL_PREDICTORS",
    "LLSR",
    "LastValuePredictor",
    "MLPDistancePredictor",
    "MissPatternPredictor",
    "TwoBitMissPredictor",
]
