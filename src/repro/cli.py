"""``python -m repro`` — run the paper's experiments from the terminal.

Subcommands:

* ``list``          — registered benchmarks, policies, perf scenarios,
  and engine backends (``repro list <kind>`` narrows to one registry)
* ``run``           — execute a declarative run spec from a JSON file
  (see ``repro spec``) through the jobs engine
* ``spec``          — author and inspect run specs: ``spec make`` writes
  one, ``spec show`` prints the canonical form and content hash
* ``characterize``  — Table I / Figure 1 rows for chosen benchmarks
* ``compare``       — STP/ANTT policy comparison on one or more workloads
* ``mlp-cdf``       — Figure 4: measured MLP distance CDFs
* ``figure``        — regenerate a whole paper figure by id (see
  ``python -m repro figure`` for targets)
* ``sweep``         — memory-latency or window-size sweeps (Figures 15–18)
* ``jobs``          — the parallel experiment engine: ``jobs run`` submits
  a workload×policy batch across ``REPRO_JOBS`` workers, ``jobs status``
  inspects the persistent result store, ``jobs cache-clear`` empties it
* ``perf``          — simulator-throughput benchmarks: ``perf run`` times
  the canonical scenarios, ``perf compare`` gates against the committed
  ``BENCH_perf.json`` baseline, ``perf update`` refreshes it, and
  ``perf profile <scenario>`` wraps the cProfile recipe (prime run,
  top-N frames) the profile tables in ``perf/PROFILE.md`` are built from

Every command accepts ``--commits`` to trade accuracy for runtime; the
defaults match the benchmark harness (see ``repro.experiments.defaults``).
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence
from pathlib import Path

from repro import registry
from repro.experiments import (
    compare_policies,
    default_commits,
    default_config,
    memory_latency_sweep,
    summarize_policies,
    window_size_sweep,
)
from repro.experiments.characterize import characterize
from repro.experiments.profile import profile_benchmark
from repro.jobs import JobSpec, default_store, default_workers, run_jobs
from repro.policies import MAIN_COMPARISON
from repro.report import cdf_chart, format_table, hbar_chart
from repro.workloads import TABLE_I
from repro.workloads.mixes import workload_category


def package_version() -> str:
    """The distribution version, identical however the CLI is launched.

    Installed checkouts answer from package metadata.  A plain
    ``PYTHONPATH=src`` checkout has no installed distribution, so the
    fallback reads the same version from the checkout's
    ``pyproject.toml`` (``repro.__version__`` is the result-store
    content-key stamp, *not* the release version — reporting it here
    would cite a different version for identical code).
    """
    from importlib import metadata
    try:
        return metadata.version("repro-mlp-fetch")
    except metadata.PackageNotFoundError:
        pass
    import tomllib
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        return tomllib.loads(pyproject.read_text())["project"]["version"]
    except (OSError, KeyError, tomllib.TOMLDecodeError):
        return "unknown (source tree without pyproject.toml)"


def _split(arg: str) -> tuple[str, ...]:
    return tuple(x.strip() for x in arg.split(",") if x.strip())


def _parse_workloads(args: Sequence[str]) -> list[tuple[str, ...]]:
    workloads = [_split(a) for a in args]
    sizes = {len(w) for w in workloads}
    if len(sizes) != 1:
        raise SystemExit("all workloads must have the same thread count")
    for w in workloads:
        for name in w:
            if name not in registry.benchmarks:
                raise SystemExit(f"unknown benchmark {name!r}; "
                                 f"see `python -m repro list`")
    return workloads


# --------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------- #

def _list_benchmarks() -> None:
    rows = [(name, t.lll_per_kilo, t.mlp, f"{t.mlp_impact:.1%}", t.category)
            for name, t in sorted(TABLE_I.items())]
    print(format_table(
        ("benchmark", "LLL/1K", "MLP", "impact", "class"), rows))
    extra = sorted(set(registry.benchmarks.names()) - set(TABLE_I))
    if extra:
        print(f"  (registered without Table I targets: {', '.join(extra)})")


def _list_policies() -> None:
    print("policies:")
    for name, cls in registry.policies.items():
        doc = (cls.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else cls.__name__
        print(f"  {name:<20} {summary}")


def _list_scenarios() -> None:
    print("perf scenarios:")
    for name, sc in registry.scenarios.items():
        print(f"  {name:<24} {sc.num_threads}t {sc.policy:<12} "
              f"{sc.commits} commits (quick {sc.quick_commits})")


def _list_backends() -> None:
    print("engine backends (RunSpec.backend / --backend):")
    for name, cls in registry.backends.items():
        doc = (cls.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else cls.__name__
        default = "  [default]" if name == "object" else ""
        print(f"  {name:<10} {summary}{default}")


def _list_checkers() -> None:
    import importlib

    print("static-analysis checkers (repro lint):")
    for name, fn in registry.checkers.items():
        mod = importlib.import_module(fn.__module__)
        summary = (mod.__doc__ or name).strip().splitlines()[0]
        print(f"  {name:<20} {summary}")


_LIST_KINDS = {
    "benchmarks": _list_benchmarks,
    "policies": _list_policies,
    "scenarios": _list_scenarios,
    "backends": _list_backends,
    "checkers": _list_checkers,
}


def cmd_list(args) -> int:
    import sys

    kind = getattr(args, "kind", None)
    if kind is not None:
        try:
            canonical = registry.canonical_kind(kind)
        except registry.RegistryError:
            print(f"repro list: unknown kind {kind!r}; choose one of: "
                  f"{', '.join(sorted(_LIST_KINDS))} (or no argument "
                  f"for everything)", file=sys.stderr)
            return 2
        # Every canonical kind has a bespoke table; a future registry
        # kind gets added to both dicts.
        _LIST_KINDS[canonical]()
        return 0
    _list_benchmarks()
    print()
    _list_policies()
    print()
    _list_scenarios()
    print()
    _list_backends()
    print()
    _list_checkers()
    return 0


def cmd_lint(args) -> int:
    import json as _json
    import sys

    from repro.analysis import run_checkers

    try:
        findings = run_checkers(args.checker or None)
    except registry.RegistryError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        names = args.checker or registry.checkers.names()
        status = "clean" if not findings else \
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
        n = len(tuple(names))
        print(f"repro lint: {status} ({n} checker{'s' if n != 1 else ''})",
              file=sys.stderr)
    return 1 if findings else 0


def cmd_run(args) -> int:
    from repro.api import RunSpec, Session, SpecError

    path = Path(args.spec)
    try:
        spec = RunSpec.from_json(path.read_text())
    except OSError as exc:
        raise SystemExit(f"repro run: cannot read {path}: {exc}") from exc
    except SpecError as exc:
        raise SystemExit(f"repro run: {path}: {exc}") from exc
    session = Session(workers=args.jobs,
                      progress=print if args.verbose else None)
    result = session.run(spec)
    print(result)
    print(f"\nspec:   {spec}")
    print(f"hash:   {spec.content_hash()}")
    print(f"[jobs] {session.last_report}")
    return 0


def _spec_from_args(args):
    from repro.api import RunSpec, SpecError

    names = _split(args.workload)
    try:
        return RunSpec(
            workload=names,
            config=default_config(num_threads=len(names)),
            policy=args.policy,
            max_commits=args.commits,
            warmup=args.warmup,
            seed=args.seed,
            backend=args.backend)
    except SpecError as exc:
        raise SystemExit(f"repro spec: {exc}") from exc


def cmd_spec_make(args) -> int:
    spec = _spec_from_args(args)
    text = spec.to_json()
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {spec} -> {args.output}")
        print(f"hash: {spec.content_hash()}")
    else:
        print(text)
    return 0


def cmd_spec_show(args) -> int:
    from repro.api import RunSpec, SpecError

    path = Path(args.spec)
    try:
        spec = RunSpec.from_json(path.read_text())
    except OSError as exc:
        raise SystemExit(f"repro spec show: cannot read {path}: {exc}") from exc
    except SpecError as exc:
        raise SystemExit(f"repro spec show: {path}: {exc}") from exc
    print(spec.to_json())
    print(f"\nspec:    {spec}")
    print(f"threads: {spec.num_threads}")
    print(f"hash:    {spec.content_hash()}")
    return 0


def cmd_characterize(args) -> int:
    names = list(_split(args.benchmarks)) if args.benchmarks else None
    rows = characterize(names=names, max_commits=args.commits)
    table_rows = [
        (r.name, r.lll_per_kilo, r.mlp, f"{r.mlp_impact:.1%}", r.category,
         f"{r.paper_lll_per_kilo:.2f}", f"{r.paper_mlp:.2f}",
         f"{r.paper_mlp_impact:.1%}", r.paper_category)
        for r in rows
    ]
    print(format_table(
        ("benchmark", "LLL/1K", "MLP", "impact", "class",
         "LLL(paper)", "MLP(paper)", "impact(paper)", "class(paper)"),
        table_rows))
    matches = sum(r.category_matches_paper for r in rows)
    print(f"\nclass agreement with the paper: {matches}/{len(rows)}")
    return 0


def cmd_compare(args) -> int:
    workloads = _parse_workloads(args.workload)
    policies = _parse_policies(args.policies)
    cfg = default_config(num_threads=len(workloads[0]))
    cells = compare_policies(workloads, policies, cfg, args.commits,
                             progress=print if args.verbose else None)
    summary = summarize_policies(cells, workloads, policies)
    categories = {w: workload_category(w) for w in workloads}
    print(f"\nworkloads: " + ", ".join(
        f"{'-'.join(w)} [{categories[w]}]" for w in workloads))
    print()
    print(hbar_chart([(p, s) for p, (s, _) in summary.items()],
                     title="STP (higher is better)"))
    print()
    print(hbar_chart([(p, a) for p, (_, a) in summary.items()],
                     title="ANTT (lower is better)"))
    return 0


def cmd_mlp_cdf(args) -> int:
    names = (_split(args.benchmarks) if args.benchmarks
             else ("mcf", "fma3d", "equake", "lucas"))
    samples = {}
    for name in names:
        profile = profile_benchmark(name, max_commits=args.commits)
        samples[name] = [float(d) for d in profile.mlp_distances]
    print(cdf_chart(samples, title="Figure 4 — measured MLP distance CDF",
                    x_label="MLP distance (instructions)"))
    return 0


def cmd_figure(args) -> int:
    from repro.experiments.figures import main as figure_main
    argv = [args.target] if args.target else []
    if args.budget:
        argv.append(str(args.budget))
    return figure_main(argv)


def cmd_sweep(args) -> int:
    workloads = (_parse_workloads(args.workload) if args.workload
                 else [("swim", "twolf"), ("vpr", "mcf")])
    policies = (_split(args.policies) if args.policies
                else ("icount", "flush", "mlp_flush"))
    sweep = (memory_latency_sweep if args.kind == "memlat"
             else window_size_sweep)
    results = sweep(workloads, policies, max_commits=args.commits)
    x_name = "latency" if args.kind == "memlat" else "ROB"
    header = (x_name, *[f"{p} STP" for p in results[next(iter(results))]],
              *[f"{p} ANTT" for p in results[next(iter(results))]])
    rows = []
    for point, summary in results.items():
        rows.append((str(point),
                     *[f"{s:.3f}" for s, _ in summary.values()],
                     *[f"{a:.3f}" for _, a in summary.values()]))
    print(format_table(header, rows))
    print("\n(all values relative to ICOUNT at the same design point)")
    return 0


def _parse_policies(arg: str | None) -> tuple[str, ...]:
    policies = _split(arg) if arg else MAIN_COMPARISON
    for p in policies:
        if p not in registry.policies:
            raise SystemExit(f"unknown policy {p!r}")
    return policies


def cmd_jobs_run(args) -> int:
    workloads = _parse_workloads(args.workload)
    policies = _parse_policies(args.policies)
    cfg = default_config(num_threads=len(workloads[0]))
    specs = [JobSpec.workload(tuple(w), cfg, p, args.commits)
             for w in workloads for p in policies]
    batch = run_jobs(specs, workers=args.jobs,
                     progress=print if args.verbose else None)
    for spec in specs:
        print(batch[spec])
    print(f"\n[jobs] {batch.report}")
    return 0


def cmd_jobs_status(_args) -> int:
    store = default_store()
    if store is None:
        print("result store: disabled (REPRO_CACHE=0)")
        return 0
    entries = len(store)
    print(f"result store: {store.root}")
    print(f"entries:      {entries} ({store.size_bytes() / 1024:.1f} KiB)")
    print(f"workers:      {default_workers()} (REPRO_JOBS)")
    return 0


def cmd_jobs_cache_clear(_args) -> int:
    store = default_store()
    removed = store.clear() if store is not None else 0
    where = store.root if store is not None else "disabled"
    print(f"result store: {where} — removed {removed} entries")
    return 0


def _perf_suite(args):
    import json as _json

    from repro import perf

    if args.backend != "object" and args.backend not in registry.backends:
        raise SystemExit(
            f"perf: unknown backend {args.backend!r}; "
            f"see `python -m repro list backends`")
    suite = perf.run_suite(repeats=args.repeat, quick=args.quick,
                           backend=args.backend,
                           progress=None if args.json else print)
    return perf, suite, _json


def _perf_table(suite) -> str:
    rows = [(r.name, f"{r.threads}t", r.policy, str(r.commits),
             f"{r.wall_s:.3f}s", f"{r.cycles_per_sec / 1e3:.1f}",
             f"{r.kips:.1f}")
            for r in suite.results]
    return format_table(("scenario", "hw", "policy", "commits", "wall",
                         "kcyc/s", "kinstr/s"), rows)


def cmd_perf_run(args) -> int:
    perf, suite, _json = _perf_suite(args)
    doc = perf.suite_to_doc(suite)
    if args.output:
        perf.write_baseline(suite, args.output)
    if args.json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_perf_table(suite))
        print(f"\ncalibration: {suite.calibration_s:.3f}s "
              f"({perf.mode_name(suite.quick, suite.backend)} mode)")
    return 0


def cmd_perf_compare(args) -> int:
    perf, suite, _json = _perf_suite(args)
    try:
        baseline = perf.load_baseline(perf.baseline_path(args.baseline))
    except perf.BaselineError as exc:
        raise SystemExit(f"perf compare: {exc}") from exc
    max_regression = (perf.DEFAULT_MAX_REGRESSION
                      if args.max_regression is None
                      else args.max_regression)
    try:
        report = perf.compare(suite, baseline,
                              max_regression=max_regression)
    except perf.BaselineError as exc:
        raise SystemExit(f"perf compare: {exc}") from exc
    if args.json:
        doc = perf.suite_to_doc(suite)
        # Calibration-normalized throughput (simulated kilocycles per
        # calibration-spin-second of machine work) is machine-speed-free:
        # appending each CI run's values to the uploaded artifact makes
        # runner-generation drift observable across runs.
        normalized = {
            r.name: round(r.cycles_per_sec * suite.calibration_s / 1e3, 3)
            for r in suite.results
        }
        doc["compare"] = {
            "mode": report.mode,
            "max_regression": report.max_regression,
            "calibration_ratio": round(report.calibration_ratio, 3),
            "geomean_speedup": round(report.geomean_speedup, 3),
            "ok": report.ok,
            "missing": report.missing,
            "normalized_kcycles_per_calib_s": normalized,
            "scenarios": {
                d.name: {"speedup": round(d.speedup, 3),
                         "current_wall_s": round(d.current_wall_s, 6),
                         "baseline_wall_s": round(d.baseline_wall_s, 6),
                         "regressed": d.regressed,
                         "work_drift": d.work_drift}
                for d in report.deltas},
        }
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        rows = [(d.name, f"{d.baseline_wall_s:.3f}s",
                 f"{d.current_wall_s:.3f}s", f"{d.speedup:.2f}x",
                 ("REGRESSED" if d.regressed else "ok")
                 + (" (work drift!)" if d.work_drift else ""))
                for d in report.deltas]
        print(format_table(("scenario", "baseline", "current", "speedup",
                            "status"), rows))
        if report.missing:
            print(f"\nnot in baseline: {', '.join(report.missing)}")
        print(f"\ngeomean speedup vs baseline: "
              f"{report.geomean_speedup:.2f}x "
              f"(machine calibration ratio {report.calibration_ratio:.2f}, "
              f"gate: >{report.max_regression:.0%} slowdown fails)")
    if not report.ok:
        import sys

        names = ", ".join(d.name for d in report.regressions)
        # In --json mode stdout is the machine-readable document (CI
        # uploads it as an artifact); the failure note goes to stderr so
        # the document stays parseable.
        print(f"\nperf compare: FAIL — regressed: {names}",
              file=sys.stderr if args.json else sys.stdout)
        return 1
    return 0


def cmd_perf_profile(args) -> int:
    from repro import perf

    if args.backend != "object" and args.backend not in registry.backends:
        raise SystemExit(
            f"perf profile: unknown backend {args.backend!r}; "
            f"see `python -m repro list backends`")
    try:
        report = perf.profile_scenario(args.scenario, top=args.top,
                                       sort=args.sort, quick=args.quick,
                                       backend=args.backend)
    except KeyError:
        raise SystemExit(
            f"perf profile: unknown scenario {args.scenario!r}; "
            f"see `python -m repro list scenarios`") from None
    except ValueError as exc:
        raise SystemExit(f"perf profile: {exc}") from exc
    print(perf.format_report(report), end="")
    return 0


def cmd_perf_duel(args) -> int:
    from repro import perf

    names = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    if len(names) != 2:
        raise SystemExit(
            f"perf duel: --backends takes exactly two comma-separated "
            f"names, got {args.backends!r}")
    for backend in names:
        if backend not in registry.backends:
            raise SystemExit(
                f"perf duel: unknown backend {backend!r}; "
                f"see `python -m repro list backends`")
    try:
        sc = perf.scenario_by_name(args.scenario)
    except KeyError:
        raise SystemExit(
            f"perf duel: unknown scenario {args.scenario!r}; "
            f"see `python -m repro list scenarios`") from None
    try:
        result = perf.duel(sc, (names[0], names[1]), rounds=args.rounds,
                           quick=args.quick)
    except ValueError as exc:
        raise SystemExit(f"perf duel: {exc}") from exc
    a, b = result.backends
    if args.json:
        import json as _json
        doc = {
            "scenario": result.name,
            "backends": list(result.backends),
            "rounds": result.rounds,
            "quick": result.quick,
            "samples_s": {k: [round(t, 6) for t in v]
                          for k, v in result.samples.items()},
            "best_s": {k: round(result.best(k), 6)
                       for k in result.backends},
            "ratio": round(result.ratio, 3),
        }
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        mode = "quick" if result.quick else "full"
        print(f"duel: {result.name} ({mode}, best of {result.rounds}, "
              f"interleaved order-fair, gc.collect() between samples)")
        for backend in result.backends:
            runs = " ".join(f"{t:.3f}" for t in result.samples[backend])
            print(f"  {backend:>8}: best {result.best(backend):.3f}s  "
                  f"[{runs}]")
        print(f"  {b} is {result.ratio:.2f}x vs {a} "
              f"(best-of-{result.rounds} wall ratio)")
    return 0


def cmd_perf_update(args) -> int:
    perf, suite, _json = _perf_suite(args)
    path = perf.write_baseline(suite, args.baseline)
    if args.json:
        doc = perf.load_baseline(path)  # the merged document as written
        doc["written_to"] = str(path)
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_perf_table(suite))
        print(f"\nwrote {perf.mode_name(suite.quick, suite.backend)} "
              f"baseline: {path}")
    return 0


# --------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MLP-aware SMT fetch policy experiments "
                    "(Eyerman & Eeckhout, HPCA 2007)")
    parser.add_argument("--version", action="version",
                        version=f"repro {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list",
                       help="registered benchmarks/policies/scenarios")
    p.add_argument("kind", nargs="?", default=None,
                   help="benchmarks | policies | scenarios | backends "
                        "| checkers (default: everything)")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser(
        "lint", help="run the project-invariant static checkers")
    p.add_argument("--checker", action="append", metavar="NAME",
                   help="run only this checker (repeatable; "
                        "see `repro list checkers`)")
    p.add_argument("--json", action="store_true",
                   help="emit findings as a JSON array")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("run", help="execute a run spec JSON file")
    p.add_argument("spec", help="path to a repro.runspec/2 JSON file "
                   "(v1 files still load)")
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or 1)")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("spec", help="author / inspect declarative run specs")
    ssub = p.add_subparsers(dest="spec_command", required=True)
    s = ssub.add_parser("make", help="build a run spec and print/write it")
    s.add_argument("-w", "--workload", required=True, metavar="A,B[,C,D]",
                   help="comma-separated benchmark names")
    s.add_argument("-p", "--policy", default="icount")
    s.add_argument("-c", "--commits", type=int, default=None)
    s.add_argument("--warmup", type=int, default=None,
                   help="default: REPRO_WARMUP or 4000")
    s.add_argument("--seed", type=int, default=0,
                   help="trace-seed salt (0 = canonical streams)")
    s.add_argument("--backend", default="object",
                   help="engine core (see `repro list backends`; "
                        "default: object)")
    s.add_argument("-o", "--output", help="write the JSON here")
    s.set_defaults(fn=cmd_spec_make)
    s = ssub.add_parser("show",
                        help="validate a spec file, print it + content hash")
    s.add_argument("spec", help="path to a repro.runspec/2 JSON file")
    s.set_defaults(fn=cmd_spec_show)

    p = sub.add_parser("characterize", help="Table I / Figure 1")
    p.add_argument("-b", "--benchmarks", help="comma-separated names")
    p.add_argument("-c", "--commits", type=int, default=None)
    p.set_defaults(fn=cmd_characterize)

    p = sub.add_parser("compare", help="policy STP/ANTT comparison")
    p.add_argument("-w", "--workload", action="append", required=True,
                   metavar="A,B[,C,D]", help="repeatable workload mix")
    p.add_argument("-p", "--policies", help="comma-separated policy names")
    p.add_argument("-c", "--commits", type=int, default=None)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("mlp-cdf", help="Figure 4 MLP distance CDFs")
    p.add_argument("-b", "--benchmarks", help="comma-separated names")
    p.add_argument("-c", "--commits", type=int, default=8_000)
    p.set_defaults(fn=cmd_mlp_cdf)

    p = sub.add_parser("figure", help="regenerate a paper figure by id")
    p.add_argument("target", nargs="?", help="e.g. table1, fig9, fig15")
    p.add_argument("budget", nargs="?", type=int)
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser("sweep", help="microarchitecture sweeps")
    p.add_argument("kind", choices=("memlat", "window"))
    p.add_argument("-w", "--workload", action="append",
                   metavar="A,B", help="repeatable workload mix")
    p.add_argument("-p", "--policies", help="comma-separated policy names")
    p.add_argument("-c", "--commits", type=int, default=None)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "jobs", help="parallel experiment engine / persistent result store")
    jsub = p.add_subparsers(dest="jobs_command", required=True)
    j = jsub.add_parser("run", help="run a workload×policy batch")
    j.add_argument("-w", "--workload", action="append", required=True,
                   metavar="A,B[,C,D]", help="repeatable workload mix")
    j.add_argument("-p", "--policies", help="comma-separated policy names")
    j.add_argument("-c", "--commits", type=int, default=None)
    j.add_argument("-j", "--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or 1)")
    j.add_argument("-v", "--verbose", action="store_true")
    j.set_defaults(fn=cmd_jobs_run)
    j = jsub.add_parser("status", help="inspect the result store")
    j.set_defaults(fn=cmd_jobs_status)
    j = jsub.add_parser("cache-clear", help="empty the result store")
    j.set_defaults(fn=cmd_jobs_cache_clear)

    p = sub.add_parser("perf", help="simulator-throughput benchmarks")
    psub = p.add_subparsers(dest="perf_command", required=True)

    def _perf_common(q):
        q.add_argument("--quick", action="store_true",
                       help="reduced budgets (CI smoke mode)")
        q.add_argument("--json", action="store_true",
                       help="emit the schema-stamped JSON document")
        q.add_argument("-r", "--repeat", type=int, default=3,
                       help="timed repeats per scenario (min is reported)")
        q.add_argument("--backend", default="object",
                       help="engine core to time (see `repro list "
                            "backends`; default: object)")

    q = psub.add_parser("run", help="time the canonical scenarios")
    _perf_common(q)
    q.add_argument("-o", "--output", help="also write the results here")
    q.set_defaults(fn=cmd_perf_run)
    q = psub.add_parser("compare",
                        help="gate a fresh run against the baseline")
    _perf_common(q)
    q.add_argument("--baseline", help="baseline file "
                   "(default: BENCH_perf.json at the repo root)")
    q.add_argument("--max-regression", type=float, default=None,
                   help="fail above this normalized slowdown "
                   "(default 0.25 = 25%%)")
    q.set_defaults(fn=cmd_perf_compare)
    q = psub.add_parser("update", help="refresh the committed baseline")
    _perf_common(q)
    q.add_argument("--baseline", help="write here instead of the repo root")
    q.set_defaults(fn=cmd_perf_update)
    q = psub.add_parser(
        "duel",
        help="order-fair A/B wall-clock duel of one scenario on two "
             "backends")
    q.add_argument("scenario",
                   help="scenario name; see `repro list scenarios`")
    q.add_argument("--backends", default="object,cext",
                   metavar="A,B",
                   help="the two engines to race (default: object,cext)")
    q.add_argument("-n", "--rounds", type=int, default=5,
                   help="timed samples per backend (default 5)")
    q.add_argument("--quick", action="store_true",
                   help="reduced budgets (CI smoke mode)")
    q.add_argument("--json", action="store_true",
                   help="emit the samples/ratio as JSON")
    q.set_defaults(fn=cmd_perf_duel)
    q = psub.add_parser(
        "profile",
        help="cProfile one scenario (prime run, then top-N frames)")
    q.add_argument("scenario",
                   help="scenario name; see `repro list scenarios`")
    q.add_argument("--top", type=int, default=15,
                   help="number of frames to print (default 15)")
    q.add_argument("--sort", default="tottime",
                   choices=("tottime", "cumtime"),
                   help="pstats sort key (default tottime)")
    q.add_argument("--quick", action="store_true",
                   help="reduced budgets (CI smoke mode)")
    q.add_argument("--backend", default="object",
                   help="engine core to profile (see `repro list "
                        "backends`; default: object)")
    q.set_defaults(fn=cmd_perf_profile)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.__dict__.get("commits") is None and hasattr(args, "commits"):
        args.commits = default_commits(8_000)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
