"""repro.api — the declarative run-spec layer every entry point shares.

The paper's evaluation is one grid — (workload mix × fetch policy ×
machine config × commit budget) scored by STP/ANTT — and this package
is the one way to name a cell of it:

* :class:`RunSpec` — a frozen, validated, content-hashable description
  of one run, with JSON round-tripping (``repro.runspec/1``) and a
  content hash byte-compatible with the :mod:`repro.jobs` cache keys.
* :class:`Session` — the execution facade: ``run``/``run_many`` through
  the persistent-store batch executor, ``simulate`` for raw
  ``(stats, core)`` pairs, ``iter_intervals`` for streaming
  per-interval statistics.
* :class:`SpecError` — everything a bad spec can raise, including
  unknown policy kwargs caught at construction time.

The legacy surfaces (``repro.jobs.JobSpec``, ``repro.perf.Scenario``,
``compare_policies``, the CLI) are adapters over this layer; new
backends (remote executors, sharded sweeps, new scenario families)
should target it directly.

Quickstart::

    from repro.api import RunSpec, Session
    from repro.experiments import default_config

    cfg = default_config(num_threads=2)
    specs = [RunSpec(("mcf", "swim"), cfg, policy, max_commits=10_000)
             for policy in ("icount", "flush", "mlp_flush")]
    session = Session(workers=4)
    for spec, result in zip(specs, session.run_many(specs)):
        print(f"{spec}: STP={result.stp:.3f} ANTT={result.antt:.3f}")
"""

from repro.api.session import IntervalSnapshot, Session
from repro.api.spec import (
    SPEC_SCHEMA,
    RunSpec,
    SpecError,
    policy_kwarg_names,
    validate_policy_kwargs,
)

__all__ = [
    "IntervalSnapshot",
    "RunSpec",
    "SPEC_SCHEMA",
    "Session",
    "SpecError",
    "policy_kwarg_names",
    "validate_policy_kwargs",
]
