"""The execution facade over the jobs engine and the simulator core.

A :class:`Session` is how declarative :class:`~repro.api.RunSpec` s get
turned into results.  It owns the *how* — worker count, result store,
progress reporting — so the specs themselves stay pure values:

* :meth:`Session.run` / :meth:`Session.run_many` score workloads with
  STP/ANTT through the :mod:`repro.jobs` batch executor (persistent
  store, shared-baseline dedup, ``REPRO_JOBS`` workers, bit-identical
  to serial).
* :meth:`Session.simulate` drives one uncached simulation and returns
  the raw ``(stats, core)`` pair — the primitive the perf harness and
  the golden-stats matrix run on.
* :meth:`Session.iter_intervals` streams per-interval snapshots from a
  single in-process simulation, yielding after every ``every`` commits
  without giving up cycle-exactness (the final snapshot matches a
  one-shot :meth:`simulate` bit for bit).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.api.spec import RunSpec
from repro.jobs.executor import BatchReport, run_jobs
from repro.jobs.store import ResultStore, default_store

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import WorkloadResult
    from repro.pipeline.core import SMTCore
    from repro.pipeline.stats import CoreStats

_UNSET = object()

#: Progress callback: receives one-line status strings as jobs resolve.
Progress = Callable[[str], None]


@dataclass(frozen=True)
class IntervalSnapshot:
    """Measured-phase statistics after one streaming interval."""

    index: int                     # 0-based interval number
    cycles: int                    # measured cycles so far
    committed: tuple[int, ...]     # per-thread committed instructions
    ipcs: tuple[float, ...]        # per-thread IPC so far
    total_ipc: float
    done: bool                     # True on the final snapshot

    @property
    def total_committed(self) -> int:
        return sum(self.committed)


class Session:
    """A configured way of executing run specs.

    ``workers`` defaults to the ``REPRO_JOBS`` environment (1 = serial
    in-process); ``store`` defaults to the environment-configured
    persistent result store (pass ``None`` to force fresh simulation);
    ``progress`` is an optional callable receiving one-line status
    strings as jobs resolve.
    """

    def __init__(self, *, workers: int | None = None,
                 store: ResultStore | None | Any = _UNSET,
                 progress: Progress | None = None):
        self.workers = workers
        self._store = store
        self.progress = progress
        #: Report of the most recent :meth:`run` / :meth:`run_many` batch.
        self.last_report: BatchReport | None = None

    @property
    def store(self) -> ResultStore | None:
        return default_store() if self._store is _UNSET else self._store

    # ------------------------------------------------------------------ #
    # cached, scored execution (the jobs engine)
    # ------------------------------------------------------------------ #

    def run_many(self, specs: Sequence[RunSpec],
                 progress: Progress | None = None) -> list[WorkloadResult]:
        """Execute specs as one deduplicated batch; results in order.

        Returns one :class:`~repro.experiments.runner.WorkloadResult`
        per spec (STP/ANTT scored against shared single-thread
        baselines).  Memoized cells are served from the store without
        re-simulation; ``self.last_report`` says what actually ran.
        """
        jobs = [spec.to_job() for spec in specs]
        batch = run_jobs(jobs, workers=self.workers, store=self.store,
                         progress=progress or self.progress)
        self.last_report = batch.report
        return [batch[job] for job in jobs]

    def run(self, spec: RunSpec) -> WorkloadResult:
        """Execute one spec; returns its scored ``WorkloadResult``."""
        return self.run_many([spec])[0]

    # ------------------------------------------------------------------ #
    # raw, uncached execution (perf harness / golden matrix / streaming)
    # ------------------------------------------------------------------ #

    def _build_core(self, spec: RunSpec) -> SMTCore:
        from repro.experiments.runner import build_core
        return build_core(spec.workload, spec.config, spec.policy,
                          spec.seed, backend=spec.backend,
                          **dict(spec.policy_kwargs))

    def simulate(self, spec: RunSpec) -> tuple[CoreStats, SMTCore]:
        """One fresh, uncached simulation; returns ``(stats, core)``.

        Exactly the construction the jobs executor and the perf
        scenarios use, so the architectural outcome is identical across
        every entry point (the golden matrix pins this).
        """
        core = self._build_core(spec)
        stats = core.run(spec.max_commits, warmup=spec.warmup)
        return stats, core

    def iter_intervals(self, spec: RunSpec,
                       every: int = 1_000) -> Iterator[IntervalSnapshot]:
        """Stream snapshots every ``every`` commits from one simulation.

        Runs the warmup phase silently, then yields an
        :class:`IntervalSnapshot` each time the leading thread crosses
        the next ``every``-commit boundary, ending with a ``done=True``
        snapshot at the spec's full budget.  The simulation state is
        continuous across yields — the final snapshot's counters are
        bit-identical to a one-shot :meth:`simulate` of the same spec.
        """
        if every <= 0:
            raise ValueError("every must be positive")
        core = self._build_core(spec)
        core.begin_measurement(spec.warmup)
        target = every
        index = 0
        while True:
            core.advance_to(min(target, spec.max_commits))
            stats = core.stats
            done = max(t.committed for t in stats.threads) \
                >= spec.max_commits
            n = len(stats.threads)
            yield IntervalSnapshot(
                index=index,
                cycles=stats.cycles,
                committed=tuple(t.committed for t in stats.threads),
                ipcs=tuple(stats.ipc(i) for i in range(n)),
                total_ipc=stats.total_ipc,
                done=done)
            if done:
                return
            index += 1
            target += every
