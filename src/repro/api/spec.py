"""The declarative run specification: one frozen, hashable value per run.

A :class:`RunSpec` captures the full coordinate of one cell in the
paper's evaluation grid — workload mix, machine config, fetch policy
(with kwargs), commit budget, warmup, and trace seed — and nothing
about *how* it executes (workers, caching, streaming all live on
:class:`repro.api.Session`).  Everything is validated at construction:
a ``RunSpec`` that exists names real benchmarks, a real policy, and
only kwargs that policy accepts.

Specs round-trip through JSON (:meth:`RunSpec.to_json` /
:meth:`RunSpec.from_json`) under the ``repro.runspec/2`` schema
(documents stamped ``repro.runspec/1`` — the layout before the engine
``backend`` field existed — still load), and
:meth:`RunSpec.content_hash` is byte-compatible with the
:class:`repro.jobs.JobSpec` cache keys, so a reloaded spec resolves
against results the jobs engine already persisted.  The default
``backend="object"`` serializes away entirely: its documents and
content hashes are byte-identical to pre-backend ones.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace
import inspect
import json
from typing import Any

from repro import registry
from repro.config import SMTConfig, config_from_dict, config_to_dict
from repro.experiments.defaults import default_warmup
from repro.jobs.spec import (
    KIND_WORKLOAD,
    JobSpec,
    UncacheableJobError,
    canonical_kwargs,
    content_key,
)

#: Stamped into every serialized spec; bump on any layout change.
SPEC_SCHEMA = "repro.runspec/2"

#: The pre-backend layout; still readable (``backend`` defaults to
#: ``object``), never written.
_SPEC_SCHEMA_V1 = "repro.runspec/1"

_DOC_FIELDS_V1 = frozenset({"schema", "workload", "policy",
                            "policy_kwargs", "max_commits", "warmup",
                            "seed", "config"})
_DOC_FIELDS = _DOC_FIELDS_V1 | {"backend"}


class SpecError(ValueError):
    """A run specification is invalid (bad name, kwarg, or document)."""


def policy_kwarg_names(policy: str) -> frozenset[str] | None:
    """Keyword parameters the named policy's constructor accepts.

    ``None`` means the constructor takes ``**kwargs`` and no static
    validation is possible.  Raises :class:`SpecError` for an unknown
    policy name.
    """
    try:
        cls = registry.policies.get(policy)
    except registry.RegistryError as exc:
        raise SpecError(str(exc)) from None
    params = [p for name, p in
              inspect.signature(cls.__init__).parameters.items()
              if name != "self"]
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return None
    return frozenset(
        p.name for p in params
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                      inspect.Parameter.KEYWORD_ONLY))


def validate_policy_kwargs(policy: str, kwargs: Mapping[str, Any]) -> None:
    """Reject kwargs the policy constructor would not accept.

    This is the construction-time guard the blind ``make_policy(name,
    **kwargs)`` forwarding never had: the error names the policy and the
    offending key(s) instead of surfacing as a ``TypeError`` deep inside
    a worker process.
    """
    accepted = policy_kwarg_names(policy)
    if accepted is None:
        return
    unknown = sorted(set(kwargs) - accepted)
    if unknown:
        hint = (f"; accepted: {', '.join(sorted(accepted))}"
                if accepted else "; it accepts no kwargs")
        raise SpecError(
            f"policy {policy!r} does not accept kwarg(s) "
            f"{', '.join(repr(k) for k in unknown)}{hint}")


def _normalize_kwarg(value: Any) -> Any:
    """Collapse equivalent container spellings to one canonical form.

    The content hash already treats tuples and lists alike (both encode
    as JSON arrays); normalizing the *stored* value too keeps the
    invariant that equal hashes mean equal specs.
    """
    if isinstance(value, (tuple, list)):
        return tuple(_normalize_kwarg(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _normalize_kwarg(v)
                for k, v in sorted(value.items())}
    return value


@dataclass(frozen=True)
class RunSpec:
    """One simulation request, fully validated and content-hashable.

    ``policy_kwargs`` may be passed as a dict (normalized to a sorted
    tuple of pairs) and ``warmup=None`` resolves to the environment
    default, so equal experiments always compare — and hash — equal.
    ``seed=0`` selects the canonical per-benchmark trace streams that
    every published number uses; other seeds derive independent
    deterministic instances of the same programs.  ``backend`` names the
    engine core that executes the run (``repro list backends``); the
    engines are architecturally bit-identical, so the backend changes
    wall time, never results — but a non-default backend is still part
    of the spec's content identity (see
    :func:`repro.jobs.spec.content_key`).
    """

    workload: tuple[str, ...]
    config: SMTConfig
    policy: str = "icount"
    policy_kwargs: tuple[tuple[str, Any], ...] = ()
    max_commits: int = 20_000
    warmup: int | None = None
    seed: int = 0
    backend: str = "object"

    def __post_init__(self) -> None:
        norm = object.__setattr__
        norm(self, "workload", tuple(self.workload))
        kwargs = self.policy_kwargs
        items = kwargs.items() if isinstance(kwargs, Mapping) else kwargs
        norm(self, "policy_kwargs",
             tuple(sorted((str(k), _normalize_kwarg(v)) for k, v in items)))
        if self.warmup is None:
            norm(self, "warmup", default_warmup())
        self._validate()

    def _validate(self) -> None:
        if not self.workload:
            raise SpecError("workload must name at least one benchmark")
        for name in self.workload:
            if name not in registry.benchmarks:
                known = ", ".join(registry.benchmarks.names())
                raise SpecError(
                    f"unknown benchmark {name!r}; known: {known}")
        if not isinstance(self.config, SMTConfig):
            raise SpecError(
                f"config must be an SMTConfig, got "
                f"{type(self.config).__name__}")
        if len(self.workload) != self.config.num_threads:
            raise SpecError(
                f"workload {self.workload} needs a "
                f"{len(self.workload)}-thread config, got "
                f"num_threads={self.config.num_threads}")
        validate_policy_kwargs(self.policy, dict(self.policy_kwargs))
        try:
            canonical_kwargs(dict(self.policy_kwargs))
        except UncacheableJobError as exc:
            raise SpecError(
                f"policy {self.policy!r}: {exc} (RunSpecs must be "
                f"serializable; pass plain numbers/strings/containers)"
            ) from None
        for name, minimum in (("max_commits", 1), ("warmup", 0),
                              ("seed", 0)):
            value = getattr(self, name)
            # bool is an int subclass but never a sane budget/seed.
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(
                    f"{name} must be an integer, got "
                    f"{type(value).__name__}")
            if value < minimum:
                raise SpecError(
                    f"{name} must be >= {minimum}, got {value}")
        if not isinstance(self.backend, str):
            raise SpecError(
                f"backend must be a string, got "
                f"{type(self.backend).__name__}")
        if self.backend not in registry.backends:
            known = ", ".join(registry.backends.names())
            raise SpecError(
                f"unknown backend {self.backend!r}; known: {known}")

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #

    @property
    def num_threads(self) -> int:
        return len(self.workload)

    def content_hash(self) -> str:
        """Stable hex content key, identical to the equivalent
        :meth:`repro.jobs.JobSpec.cache_key` — the property that lets a
        serialized-and-reloaded spec hit the warm jobs cache."""
        return content_key(KIND_WORKLOAD, self.workload, self.config,
                           self.max_commits, self.warmup, self.policy,
                           self.policy_kwargs, seed=self.seed,
                           backend=self.backend)

    def to_job(self) -> JobSpec:
        """The executable :class:`~repro.jobs.JobSpec` for this spec."""
        return JobSpec.from_runspec(self)

    def with_(self, **changes: Any) -> RunSpec:
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #

    def to_doc(self) -> dict:
        """The canonical JSON-serializable document for this spec.

        The default ``object`` backend is omitted (mirroring the
        content-key payload), so default-backend documents are
        byte-identical to the pre-backend ``repro.runspec/1`` layout
        apart from the schema stamp.
        """
        doc = {
            "schema": SPEC_SCHEMA,
            "workload": list(self.workload),
            "policy": self.policy,
            "policy_kwargs": {k: canonical_kwargs(v)
                              for k, v in self.policy_kwargs},
            "max_commits": self.max_commits,
            "warmup": self.warmup,
            "seed": self.seed,
            "config": config_to_dict(self.config),
        }
        if self.backend != "object":
            doc["backend"] = self.backend
        return doc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_doc(), indent=indent, sort_keys=True)

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> RunSpec:
        """Parse a document produced by :meth:`to_doc`.

        A missing or unexpected ``schema`` stamp is refused outright —
        guessing at the layout of an unknown schema could silently run
        the wrong experiment.
        """
        if not isinstance(doc, Mapping):
            raise SpecError(
                f"run spec must be a JSON object, got "
                f"{type(doc).__name__}")
        found = doc.get("schema")
        if found not in (SPEC_SCHEMA, _SPEC_SCHEMA_V1):
            raise SpecError(
                f"unsupported run-spec schema {found!r} "
                f"(this version reads {SPEC_SCHEMA!r} and "
                f"{_SPEC_SCHEMA_V1!r})")
        # v1 predates the backend field; a v1 document carrying one is
        # mis-stamped, not merely old, and is refused like any other
        # unknown field.
        allowed = _DOC_FIELDS if found == SPEC_SCHEMA else _DOC_FIELDS_V1
        unknown = set(doc) - allowed
        if unknown:
            raise SpecError(
                f"unknown run-spec field(s): {', '.join(sorted(unknown))}")
        try:
            config = config_from_dict(doc["config"])
        except KeyError:
            raise SpecError("run spec is missing 'config'") from None
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad config tree: {exc}") from None
        kwargs = doc.get("policy_kwargs", {})
        if not isinstance(kwargs, Mapping):
            raise SpecError("policy_kwargs must be a JSON object")
        try:
            return cls(
                workload=tuple(doc["workload"]),
                config=config,
                policy=doc.get("policy", "icount"),
                policy_kwargs=kwargs,
                max_commits=doc["max_commits"],
                warmup=doc.get("warmup"),
                seed=doc.get("seed", 0),
                backend=doc.get("backend", "object"),
            )
        except KeyError as exc:
            raise SpecError(f"run spec is missing {exc.args[0]!r}") from None

    @classmethod
    def from_json(cls, text: str) -> RunSpec:
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"run spec is not valid JSON: {exc}") from None
        return cls.from_doc(doc)

    def __str__(self) -> str:
        mix = "-".join(self.workload)
        base = f"{mix}:{self.policy}@{self.max_commits}"
        if self.backend != "object":
            base += f"+{self.backend}"
        return base
