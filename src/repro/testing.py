"""Shared test/benchmark environment helpers.

Both pytest suites (``tests/`` and ``benchmarks/``) manage the
:mod:`repro.jobs` environment knobs — ``REPRO_CACHE_DIR``,
``REPRO_CACHE``, ``REPRO_JOBS`` — around their sessions.  They used to do
it with ad-hoc, subtly different save/apply/restore code; this module is
the single implementation.

* ``tests/`` pins a temporary store directory with caching forced on and
  worker parallelism forced off: hermetic in both directions (the suite
  never touches ``~/.cache/repro``, and ambient settings can't flip the
  behaviors the tests assert).
* ``benchmarks/`` resolves the ambient configuration once and pins the
  *resolved* values, so every worker subprocess of a multi-process batch
  sees the same store even if the environment mutates mid-session.
"""

from __future__ import annotations

from contextlib import contextmanager
import os

#: The environment knobs the repro engines read: the repro.jobs store
#: (repro/jobs/store.py) plus the runtime sanitizer switch
#: (repro/pipeline/sanitize.py).
ENV_KEYS = ("REPRO_CACHE_DIR", "REPRO_CACHE", "REPRO_JOBS",
            "REPRO_SANITIZE")


@contextmanager
def pinned_environment(**pins: str | None):
    """Set each ``KEY=value`` pin (``None`` removes the variable), restore on exit.

    Only keys in :data:`ENV_KEYS` are accepted — this is a result-store
    pinning helper, not a general env patcher.
    """
    for key in pins:
        if key not in ENV_KEYS:
            raise ValueError(f"{key!r} is not a repro.jobs env knob "
                             f"(expected one of {ENV_KEYS})")
    saved = {key: os.environ.get(key) for key in pins}
    try:
        for key, value in pins.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = str(value)
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@contextmanager
def isolated_result_store(cache_dir: str):
    """Hermetic store: ``cache_dir``, caching on, no worker parallelism."""
    with pinned_environment(REPRO_CACHE_DIR=cache_dir, REPRO_CACHE="1",
                            REPRO_JOBS=None):
        yield


@contextmanager
def resolved_result_store():
    """Pin the *currently resolved* store configuration for a session.

    Honors the ambient ``REPRO_CACHE_DIR``/``REPRO_CACHE``/``REPRO_JOBS``
    (benchmarks intentionally keep a warm persistent cache across runs)
    but writes the resolved directory back, so subprocess workers and
    late readers agree on one location.
    """
    from repro.jobs.store import cache_root

    with pinned_environment(REPRO_CACHE_DIR=str(cache_root())):
        yield
