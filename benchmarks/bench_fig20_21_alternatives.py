"""Figures 20/21: the five alternative MLP-aware fetch policies.

(a) flush, (b) MLP distance + flush, (c) binary MLP + flush,
(d) MLP distance + flush at resource stall, (e) binary MLP + flush at
resource stall.

Paper findings: distance prediction beats binary prediction ((b) > (c),
(d) > (e) in general); (d) wins for MLP-intensive pairs (flushing at
resource stalls frees everything for the co-runner while in-flight misses
still overlap — the prefetch effect), while (b) is the better option for
mixed pairs.
"""

from bench_common import (
    bench_commits,
    bench_config,
    print_header,
    two_thread_groups,
)
from repro.experiments import compare_policies, summarize_policies
from repro.experiments.policy_comparison import format_summary
from repro.policies import ALTERNATIVES


def run_alternatives():
    cfg = bench_config(2)
    budget = bench_commits()
    groups = two_thread_groups()
    results = {}
    for label in ("MLP", "MIX"):
        workloads = groups[label]
        cells = compare_policies(workloads, ALTERNATIVES, cfg, budget)
        results[label] = summarize_policies(cells, workloads, ALTERNATIVES)
    return results


def test_fig20_21_alternatives(benchmark):
    results = benchmark.pedantic(run_alternatives, rounds=1, iterations=1)
    print_header("Figures 20/21 — alternative MLP-aware policies "
                 "(a=flush, b=mlp_flush, c=binary_mlp_flush, "
                 "d=mlp_flush_rs, e=binary_mlp_flush_rs)")
    for label, summary in results.items():
        print(f"\n[{label} workloads]")
        print(format_summary(summary, baseline="flush"))

    # Shape: distance-based (b) must not lose to its binary variant (c)
    # on ANTT for MLP-heavy workloads.
    mlp = results["MLP"]
    assert mlp["mlp_flush"][1] <= mlp["binary_mlp_flush"][1] * 1.10
