"""Ablation: LLSR length (the MLP observation window).

The paper sizes the LLSR at ROB/threads entries and measures Figure 4 with
a 128-entry LLSR.  The length bounds the largest observable MLP distance,
so it directly caps how much window the MLP-aware policies will grant a
missing thread.  This ablation sweeps the length on two contrasting
programs: lucas (all MLP within 40 instructions) and mcf (MLP beyond 100).

Expected shape: lucas's measured distances saturate by length 64 — longer
registers change nothing — while mcf keeps finding more distant MLP up to
the full 128/256, mirroring Figure 4's spread.
"""

from dataclasses import replace

from bench_common import bench_commits, bench_config, print_header
from repro.experiments.runner import trace_for
from repro.pipeline import SMTCore
from repro.policies import make_policy

LENGTHS = (32, 64, 128, 256)
PROGRAMS = ("lucas", "mcf")


def _measured(name, length, budget):
    cfg = bench_config(num_threads=1)
    cfg = replace(cfg, llsr_length_override=length)
    core = SMTCore(cfg, [trace_for(name, cfg)], make_policy("icount"))
    core.run(budget)
    return [d for _, d in core.threads[0].llsr.measured]


def run_sweep():
    budget = bench_commits()
    out = {}
    for name in PROGRAMS:
        per_len = {}
        for length in LENGTHS:
            ds = _measured(name, length, budget)
            per_len[length] = {
                "n": len(ds),
                "mean": sum(ds) / len(ds) if ds else 0.0,
                "p95": sorted(ds)[int(0.95 * (len(ds) - 1))] if ds else 0,
            }
        out[name] = per_len
    return out


def test_ablation_llsr_length(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_header("Ablation — LLSR length vs observable MLP distance")
    print(f"{'program':<9} {'length':>7} {'samples':>8} {'mean':>7} "
          f"{'p95':>6}")
    for name, per_len in results.items():
        for length, row in per_len.items():
            print(f"{name:<9} {length:>7} {row['n']:>8} "
                  f"{row['mean']:>7.1f} {row['p95']:>6}")
    print("\npaper (Fig 4): lucas's MLP lives below distance 40; mcf's "
          "extends past 100 — short LLSRs clip mcf but not lucas")
    for name, per_len in results.items():
        for length, row in per_len.items():
            assert row["p95"] <= length, "distance cannot exceed the LLSR"
        # Both programs miss periodically, so a longer register always
        # admits more-distant companions: p95 grows monotonically.
        p95s = [per_len[length]["p95"] for length in LENGTHS]
        assert all(a <= b for a, b in zip(p95s, p95s[1:])), \
            f"{name}: p95 distance should grow with the LLSR length"
    mcf = results["mcf"]
    assert mcf[256]["p95"] > mcf[32]["p95"], \
        "mcf's long-range MLP should keep growing with the window"
