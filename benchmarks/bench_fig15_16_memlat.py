"""Figures 15/16: STP and ANTT versus main-memory latency (200..800).

Paper: the MLP-aware flush policy's advantage over ICOUNT *grows* with
memory latency — the longer a stalled thread would hold resources, the
more valuable releasing them becomes.
"""

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import memory_latency_sweep

WORKLOADS = (("swim", "twolf"), ("vpr", "mcf"), ("fma3d", "twolf"))
POLICIES = ("icount", "stall", "flush", "mlp_flush")
LATENCIES = (200, 400, 600, 800)


def run_memlat_sweep():
    return memory_latency_sweep(WORKLOADS, POLICIES, latencies=LATENCIES,
                                cfg=bench_config(2),
                                max_commits=bench_commits(6_000))


def test_fig15_16_memory_latency(benchmark):
    results = benchmark.pedantic(run_memlat_sweep, rounds=1, iterations=1)
    print_header("Figures 15/16 — STP & ANTT vs memory latency "
                 "(relative to ICOUNT at each point)")
    print(f"{'latency':<8}" + "".join(f"{p:>22}" for p in POLICIES))
    for lat in LATENCIES:
        row = "".join(
            f"  {results[lat][p][0]:>8.3f}/{results[lat][p][1]:>9.3f}"
            for p in POLICIES)
        print(f"{lat:<8}{row}")
    print("(each cell: STP-ratio / ANTT-ratio vs ICOUNT; STP>1 and ANTT<1 "
          "are better)")

    # Shape: mlp_flush still beats ICOUNT at the longest latency, and its
    # STP advantage does not shrink from the shortest to longest latency.
    first, last = results[LATENCIES[0]], results[LATENCIES[-1]]
    assert last["mlp_flush"][0] > 1.0
    assert last["mlp_flush"][0] >= first["mlp_flush"][0] * 0.9
