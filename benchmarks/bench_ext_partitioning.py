"""Extension: the full resource-management design space.

Adds the related-work baselines the paper discusses but does not plot —
data-miss gating (DG/PDG, El-Moursy & Albonesi 2003) and learning-based
hill-climbing partitioning (Choi & Yeung 2006) — plus the paper's own
suggested future work, MLP-aware DCRA, next to the headline MLP-aware
flush policy.

Expected shape:
* gating (dg/pdg) limits IQ clog but serializes MLP → behind mlp_flush on
  MLP-intensive mixes;
* learning reacts over epochs → trails event-driven schemes on these
  short phase-heavy runs (the paper's responsiveness argument);
* mlp_dcra ≥ dcra on turnaround for MLP mixes (the fixed slow-thread
  bonus becomes distance-proportional).
"""

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import compare_policies, summarize_policies
from repro.experiments.policy_comparison import format_summary

POLICIES = ("icount", "dg", "pdg", "learning", "dcra", "mlp_dcra",
            "mlp_flush")
WORKLOADS = (("mcf", "swim"), ("swim", "galgel"), ("lucas", "fma3d"),
             ("swim", "twolf"), ("vpr", "mcf"))


def run_comparison():
    cfg = bench_config(num_threads=2)
    cells = compare_policies(WORKLOADS, POLICIES, cfg, bench_commits())
    return summarize_policies(cells, WORKLOADS, POLICIES)


def test_ext_partitioning_design_space(benchmark):
    summary = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_header("Extension — gating / learning / MLP-aware DCRA vs "
                 "MLP-aware flush (MLP-heavy 2-thread mixes)")
    print(format_summary(summary))
    print("\nReading: MLP-distance awareness improves both its flush "
          "(mlp_flush vs icount) and its partitioning (mlp_dcra vs dcra) "
          "hosts.  Note DG's strong showing on these symmetric MLP+MLP "
          "pairs: a 2-miss gate caps both threads' window hunger while "
          "still letting 3 misses overlap — but unlike the MLP-aware "
          "policies it has no way to open the window further for "
          "long-distance programs (see the memlat/window sweeps).  "
          "Epoch-based learning trails every event-driven scheme on "
          "these short phase-heavy runs — the paper's responsiveness "
          "argument.")
    # Shape assertions — only claims the mechanisms guarantee:
    assert summary["mlp_flush"][0] > summary["icount"][0], \
        "MLP-aware flush must out-throughput ICOUNT on MLP mixes (paper)"
    assert summary["mlp_dcra"][1] <= summary["dcra"][1] * 1.05, \
        "distance-scaled bonuses should not lose turnaround to fixed ones"
    assert summary["learning"][0] > summary["icount"][0] * 0.85, \
        "learning partitioning should stay within range of ICOUNT"
    assert summary["learning"][1] < summary["icount"][1], \
        "even slow feedback beats no resource management on MLP mixes"
