"""Ablation (paper §4.1): long-latency load predictor design.

The paper "explored a wide range of long-latency load predictors, such as
a last value predictor and the 2-bit saturating counter load miss
predictor proposed by El-Moursy and Albonesi" and concluded the Limousin
et al. miss pattern predictor wins (as did Cazorla et al.).  This ablation
re-runs that exploration: per-load hit/miss accuracy for each predictor
kind, plus the end-to-end effect on the MLP-aware *stall* policy (the one
that depends on front-end prediction), and a table-size sensitivity check.

Expected shape: miss-pattern ≥ last-value ≥ two-bit on accuracy for the
periodic-miss programs; policy STP/ANTT orders accordingly; shrinking the
table to 64 entries costs accuracy through aliasing.
"""

from dataclasses import replace

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import evaluate_workload
from repro.experiments.runner import clear_baseline_cache, run_single

KINDS = ("miss_pattern", "last_value", "two_bit")
ACCURACY_PROGRAMS = ("swim", "applu", "equake", "mcf")


def _config(kind, entries=2048, num_threads=2):
    cfg = bench_config(num_threads)
    return replace(cfg, predictors=replace(
        cfg.predictors, lll_kind=kind, lll_entries=entries))


def run_ablation():
    budget = bench_commits()
    accuracy = {}
    for kind in KINDS:
        cfg = _config(kind, num_threads=1)
        per_prog = {}
        for name in ACCURACY_PROGRAMS:
            stats = run_single(name, cfg, budget, warmup=1000)
            per_prog[name] = stats.threads[0].lll_predictor_accuracy
        accuracy[kind] = per_prog
    policy_rows = {}
    for kind in KINDS:
        clear_baseline_cache(disk=False)
        result = evaluate_workload(("swim", "twolf"), _config(kind),
                                   "mlp_stall", budget)
        policy_rows[kind] = (result.stp, result.antt)
    small = run_single("swim", _config("miss_pattern", entries=64,
                                       num_threads=1), budget, warmup=1000)
    clear_baseline_cache(disk=False)
    return accuracy, policy_rows, small.threads[0].lll_predictor_accuracy


def test_ablation_lll_predictor_kinds(benchmark):
    accuracy, policy_rows, small_acc = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1)
    print_header("Ablation — long-latency load predictor design (§4.1)")
    progs = ACCURACY_PROGRAMS
    print(f"{'predictor':<14}" + "".join(f"{p:>9}" for p in progs))
    for kind, per_prog in accuracy.items():
        print(f"{kind:<14}" + "".join(f"{per_prog[p]:>9.3f}" for p in progs))
    print(f"\nmlp_stall on swim-twolf: " + ", ".join(
        f"{k}: STP={s:.3f}/ANTT={a:.3f}"
        for k, (s, a) in policy_rows.items()))
    full_acc = accuracy["miss_pattern"]["swim"]
    print(f"miss_pattern on swim, 2048 vs 64 entries: "
          f"{full_acc:.3f} vs {small_acc:.3f}")
    print("\npaper: miss-pattern predictor outperforms the alternatives "
          "(§4.1); accuracy ≥94% per load, ≥85% per miss (Figure 6)")
    mean = {k: sum(v.values()) / len(v) for k, v in accuracy.items()}
    assert mean["miss_pattern"] >= mean["two_bit"] - 0.02, \
        "miss-pattern should at least match the 2-bit counter"
    assert mean["miss_pattern"] >= 0.85, \
        "miss-pattern accuracy collapsed below any plausible range"
    assert small_acc <= full_acc + 0.02, \
        "a 32x smaller table should not outperform the full one"
