"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper at reduced
scale and prints measured rows next to the paper's published values.  The
policy-comparison benches (``compare_policies`` and the sweeps) submit
through the :mod:`repro.jobs` engine — parallel workers plus full result
memoization; benches that call ``run_single``/``run_workload`` directly
(the ablations, IPC stacks) stay serial and only reuse memoized
single-thread baselines.  Environment knobs (full list in
EXPERIMENTS.md):

* ``REPRO_FULL=1``     — run the complete Table II/III workload lists
  instead of the representative subsets.
* ``REPRO_COMMITS``    — per-thread instruction budget (default here: 8000).
* ``REPRO_JOBS``       — worker processes per batch (default 1 = serial).
* ``REPRO_CACHE_DIR``  — persistent result store location (default
  ``~/.cache/repro``); ``REPRO_CACHE=0`` disables memoization.

Keep in mind the caveat from EXPERIMENTS.md: absolute numbers differ from
the paper (synthetic workloads, scaled caches, short runs); the comparisons
target the *shape* — who wins, roughly by how much, and where trends go.
"""

from __future__ import annotations

import os

from repro.config import SMTConfig
from repro.experiments import default_config
from repro.experiments.defaults import full_runs
from repro.workloads import (
    FOUR_THREAD_WORKLOADS,
    TWO_THREAD_ILP,
    TWO_THREAD_MLP,
    TWO_THREAD_MIXED,
)


def bench_commits(default: int = 20_000) -> int:
    """Per-thread instruction budget for the benches.

    The default must exceed the slow-thread bootstrap scale: in extreme
    speed-asymmetric pairs (lucas–fma3d with the prefetcher), the
    memory-bound thread needs enough commits past warmup to push 128+
    instructions through its LLSR and train the MLP predictor — below
    ~16K total budget its measurement is all cold-start transient.
    """
    env = os.environ.get("REPRO_COMMITS")
    return int(env) if env else default


def bench_config(num_threads: int = 2) -> SMTConfig:
    return default_config(num_threads=num_threads)


# Representative workload subsets (full lists under REPRO_FULL=1).
_QUICK_ILP = (("vortex", "parser"), ("crafty", "twolf"), ("gcc", "gap"))
_QUICK_MLP = (("mcf", "swim"), ("mcf", "galgel"), ("lucas", "fma3d"),
              ("swim", "mesa"))
_QUICK_MIX = (("swim", "perlbmk"), ("fma3d", "twolf"), ("vpr", "mcf"),
              ("equake", "perlbmk"))
_QUICK_4T = (("vortex", "parser", "crafty", "twolf"),
             ("mgrid", "vortex", "swim", "twolf"),
             ("lucas", "fma3d", "equake", "perlbmk"),
             ("apsi", "mesa", "mcf", "swim"))


def two_thread_groups() -> dict[str, tuple[tuple[str, str], ...]]:
    if full_runs():
        return {"ILP": TWO_THREAD_ILP, "MLP": TWO_THREAD_MLP,
                "MIX": TWO_THREAD_MIXED}
    return {"ILP": _QUICK_ILP, "MLP": _QUICK_MLP, "MIX": _QUICK_MIX}


def four_thread_workloads():
    if full_runs():
        return tuple(w for group in FOUR_THREAD_WORKLOADS.values()
                     for w in group)
    return _QUICK_4T


def engine_status() -> str:
    """One-line jobs-engine banner (workers + result-store state)."""
    from repro.jobs import default_store, default_workers
    store = default_store()
    if store is None:
        cache = "cache disabled (REPRO_CACHE=0)"
    else:
        cache = f"cache {store.root} ({len(store)} entries)"
    return f"jobs engine: {default_workers()} worker(s), {cache}"


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print(engine_status())
    print("=" * 72)
