"""Pytest configuration for the benchmark harness."""

from pathlib import Path
import sys

import pytest

# Make bench_common importable when pytest sets rootdir elsewhere.
sys.path.insert(0, str(Path(__file__).parent))

from repro.testing import resolved_result_store  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def _pinned_result_store():
    """Pin the resolved ``REPRO_CACHE_DIR`` for the whole bench session.

    Benchmarks intentionally keep a warm persistent result store across
    runs (ambient ``REPRO_CACHE_DIR``, or ``~/.cache/repro``), but the
    resolved location is pinned up front — via the same
    :mod:`repro.testing` helper the test suite uses — so every worker
    subprocess of a ``REPRO_JOBS`` batch sees one consistent store.
    """
    with resolved_result_store():
        yield
