"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Make bench_common importable when pytest sets rootdir elsewhere.
sys.path.insert(0, str(Path(__file__).parent))
