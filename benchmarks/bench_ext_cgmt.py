"""Extension (paper §7.3): MLP-aware context switching for CGMT.

Tune et al.'s balanced multithreading motivates the question; the paper
supplies the answer: "a context switch should not be done for all
long-latency loads, but should rather be performed at isolated long-latency
loads and at the last long-latency load in a burst."  This bench compares
switch-on-miss CGMT against the MLP-aware switch driven by the MLP
distance predictor, both running on the same SMT substrate with one
fetching thread at a time.

Expected shape: the MLP-aware switch keeps the burst's misses in flight
across the switch, so the memory-bound thread loses less work (fewer
squashed instructions per switch) and posts better IPC; aggregate STP
moves with how much MLP the workload has to protect.
"""

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import evaluate_workload
from repro.experiments.runner import run_workload

WORKLOADS = (("swim", "twolf"), ("mcf", "galgel"), ("applu", "twolf"))


def run_comparison():
    cfg = bench_config(num_threads=2)
    budget = bench_commits()
    rows = []
    for names in WORKLOADS:
        for policy in ("cgmt", "mlp_cgmt"):
            result = evaluate_workload(names, cfg, policy, budget)
            stats, core = run_workload(names, cfg, policy, budget)
            rows.append({
                "workload": "-".join(names),
                "policy": policy,
                "stp": result.stp,
                "antt": result.antt,
                "mlp_ipc": result.ipcs[0],
                "squashed": stats.threads[0].squashed,
                "switches": core.policy.switches,
            })
    return rows


def test_ext_mlp_aware_cgmt(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_header("Extension — CGMT switch-on-miss vs MLP-aware switching")
    print(f"{'workload':<14} {'policy':<10} {'STP':>7} {'ANTT':>8} "
          f"{'IPC(mlp)':>9} {'squash':>8} {'switch':>7}")
    for r in rows:
        print(f"{r['workload']:<14} {r['policy']:<10} {r['stp']:>7.3f} "
              f"{r['antt']:>8.3f} {r['mlp_ipc']:>9.3f} "
              f"{r['squashed']:>8} {r['switches']:>7}")
    print("\nReading: waiting for the burst's last miss before switching "
          "preserves the memory thread's in-flight work — squashes drop "
          "sharply on every mix.  The IPC effect is program-dependent: "
          "short MLP windows (swim) convert the kept work into speed, "
          "while very long windows (applu) hold shared resources across "
          "the switch and slow the pair — the same window-length "
          "trade-off the paper's §6.5 alternatives explore for flush.")
    by_key = {(r["workload"], r["policy"]): r for r in rows}
    # Mechanism guarantee: keeping the burst in flight means fewer
    # squashed instructions for the memory-bound thread on every mix.
    for names in WORKLOADS:
        w = "-".join(names)
        assert (by_key[(w, "mlp_cgmt")]["squashed"]
                <= by_key[(w, "cgmt")]["squashed"]), \
            f"{w}: MLP-aware switching must squash less than switch-on-miss"
    wins = sum(
        by_key[("-".join(n), "mlp_cgmt")]["mlp_ipc"]
        >= by_key[("-".join(n), "cgmt")]["mlp_ipc"] * 0.98
        for n in WORKLOADS)
    assert wins >= 1, \
        "MLP-aware switching should pay off on at least one mix"
