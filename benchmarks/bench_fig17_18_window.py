"""Figures 17/18: STP and ANTT versus processor window size (ROB 128..1024,
with LSQ/issue queues/rename registers scaled proportionally).

Paper: long-latency-aware policies help *more* with fewer resources, while
MLP-aware policies gain on their non-MLP-aware counterparts as the window
grows (bigger windows expose more MLP worth preserving).
"""

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import window_size_sweep

WORKLOADS = (("swim", "twolf"), ("vpr", "mcf"), ("fma3d", "twolf"))
POLICIES = ("icount", "flush", "mlp_flush")
SIZES = (128, 256, 512, 1024)


def run_window_sweep():
    return window_size_sweep(WORKLOADS, POLICIES, rob_sizes=SIZES,
                             cfg=bench_config(2),
                             max_commits=bench_commits(6_000))


def test_fig17_18_window_size(benchmark):
    results = benchmark.pedantic(run_window_sweep, rounds=1, iterations=1)
    print_header("Figures 17/18 — STP & ANTT vs window size "
                 "(relative to ICOUNT at each point)")
    print(f"{'ROB':<6}" + "".join(f"{p:>22}" for p in POLICIES))
    for size in SIZES:
        row = "".join(
            f"  {results[size][p][0]:>8.3f}/{results[size][p][1]:>9.3f}"
            for p in POLICIES)
        print(f"{size:<6}{row}")
    print("(each cell: STP-ratio / ANTT-ratio vs ICOUNT)")

    # Shape: MLP-aware flush's ANTT advantage over blind flush should not
    # disappear as the window grows (more MLP to preserve).
    big = results[SIZES[-1]]
    assert big["mlp_flush"][1] <= big["flush"][1] * 1.05
