"""Figures 22/23: MLP-aware flush versus static partitioning and DCRA.

Paper: DCRA edges out MLP-aware flush on ILP-intensive workloads (~3%),
but for MLP-intensive and mixed workloads the MLP-aware flush policy gives
clearly better turnaround (5.4% better ANTT 2-thread, 8.5% 4-thread) at
comparable or better throughput — because DCRA hands memory-intensive
threads a *fixed* extra share regardless of how much MLP actually exists.
"""

from bench_common import (
    bench_commits,
    bench_config,
    four_thread_workloads,
    print_header,
    two_thread_groups,
)
from repro.experiments import compare_policies, summarize_policies
from repro.experiments.policy_comparison import format_summary

POLICIES = ("icount", "static", "dcra", "mlp_flush")


def run_partitioning_comparison():
    results = {}
    cfg2 = bench_config(2)
    budget = bench_commits()
    groups = two_thread_groups()
    for label in ("ILP", "MLP", "MIX"):
        workloads = groups[label]
        cells = compare_policies(workloads, POLICIES, cfg2, budget)
        results[f"2T-{label}"] = summarize_policies(cells, workloads,
                                                    POLICIES)
    cfg4 = bench_config(4)
    quads = four_thread_workloads()
    cells = compare_policies(quads, POLICIES, cfg4, bench_commits(6_000))
    results["4T"] = summarize_policies(cells, quads, POLICIES)
    return results


def test_fig22_23_partitioning(benchmark):
    results = benchmark.pedantic(run_partitioning_comparison, rounds=1,
                                 iterations=1)
    print_header("Figures 22/23 — MLP-aware flush vs static partitioning "
                 "and DCRA")
    for label, summary in results.items():
        print(f"\n[{label}]")
        print(format_summary(summary, baseline="icount"))

    print("\nKnown deviation (recorded in EXPERIMENTS.md): on these "
          "synthetic quick sets DCRA's fixed slow-thread bonus edges "
          "MLP-aware flush on ANTT, where the paper reports the reverse "
          "by 5.4%.  Both reproduce the larger story — every dynamic "
          "scheme clearly beats ICOUNT and static splitting — but the "
          "DCRA-vs-mlp_flush margin is inside this substrate's noise "
          "band and flips sign against the paper.")
    # Shape: dynamic resource management beats no management and static
    # splitting on memory-heavy mixes; DCRA and MLP-aware flush end up
    # close (the paper's 5.4% margin does not survive the substrate
    # change — see the printed deviation note above).
    mlp = results["2T-MLP"]
    assert mlp["dcra"][0] >= mlp["static"][0] * 0.9
    assert mlp["mlp_flush"][1] < mlp["icount"][1]
    assert mlp["mlp_flush"][1] <= mlp["dcra"][1] * 1.15
