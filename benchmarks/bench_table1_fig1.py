"""Table I / Figure 1: per-benchmark MLP characterization.

Regenerates, for all 26 SPEC CPU2000 analogs on the single-threaded
baseline machine: long-latency loads per 1K instructions, MLP (Chou et
al.), the MLP impact of serializing independent misses, and the resulting
ILP/MLP classification — side by side with the paper's published values.
"""

from bench_common import bench_commits, print_header
from repro.experiments.characterize import characterize, format_table
from repro.workloads import TABLE_I


def run_characterization():
    rows = characterize(max_commits=bench_commits(12_000))
    matches = sum(r.category_matches_paper for r in rows)
    return rows, matches


def test_table1_fig1(benchmark):
    rows, matches = benchmark.pedantic(run_characterization, rounds=1,
                                       iterations=1)
    print_header("Table I / Figure 1 — MLP characterization (measured vs paper)")
    print(format_table(rows))
    print(f"\nILP/MLP classification agreement: {matches}/{len(rows)} "
          f"benchmarks match the paper")
    assert matches >= len(TABLE_I) - 3
