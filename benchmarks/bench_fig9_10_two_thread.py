"""Figures 9/10: STP and ANTT of the six fetch policies on the two-thread
workloads, by workload class (Table II).

Paper headlines (2-thread):
* MLP-intensive:  MLP-aware flush +20.2% STP / -21.0% ANTT vs ICOUNT.
* Mixed ILP/MLP:  MLP-aware flush +22.4% STP / -19.2% ANTT vs ICOUNT,
  +4.0% STP / -13.9% ANTT vs flush.
* ILP-intensive:  MLP-aware flush ~ flush, +6.4% STP vs ICOUNT.
"""

from bench_common import (
    bench_commits,
    bench_config,
    print_header,
    two_thread_groups,
)
from repro.experiments import compare_policies, summarize_policies
from repro.experiments.policy_comparison import format_summary
from repro.policies import MAIN_COMPARISON


def run_two_thread_comparison():
    cfg = bench_config(num_threads=2)
    budget = bench_commits()
    results = {}
    for label, workloads in two_thread_groups().items():
        cells = compare_policies(workloads, MAIN_COMPARISON, cfg, budget)
        results[label] = summarize_policies(cells, workloads,
                                            MAIN_COMPARISON)
    return results


def test_fig9_10_two_thread_policies(benchmark):
    results = benchmark.pedantic(run_two_thread_comparison, rounds=1,
                                 iterations=1)
    print_header("Figures 9/10 — 2-thread STP & ANTT by policy and class")
    for label, summary in results.items():
        print(f"\n[{label}-intensive workloads]")
        print(format_summary(summary))

    mlp = results["MLP"]
    mix = results["MIX"]
    ilp = results["ILP"]
    # Paper shape: the MLP-aware flush policy posts the best ANTT of all
    # policies for MLP and mixed workloads...
    assert mlp["mlp_flush"][1] <= min(v[1] for v in mlp.values()) * 1.10
    assert mix["mlp_flush"][1] <= min(v[1] for v in mix.values()) * 1.05
    # ...beats ICOUNT on throughput for MLP and mixed workloads...
    assert mlp["mlp_flush"][0] > mlp["icount"][0]
    assert mix["mlp_flush"][0] > mix["icount"][0]
    # ...and is within noise of flush on pure-ILP workloads.
    assert abs(ilp["mlp_flush"][0] - ilp["flush"][0]) / ilp["flush"][0] < 0.10
