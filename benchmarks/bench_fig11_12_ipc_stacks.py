"""Figures 11/12: per-thread IPC under ICOUNT, flush and MLP-aware flush
for MLP-intensive and mixed workloads.

The paper's exemplar is mcf-galgel: blind flush crushes mcf (its MLP is
serialized) while galgel soars; MLP-aware flush keeps mcf near its ICOUNT
performance while still handing galgel most of the machine.
"""

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import evaluate_workload

MLP_PAIRS = (("mcf", "swim"), ("mcf", "galgel"), ("lucas", "fma3d"))
MIX_PAIRS = (("swim", "twolf"), ("fma3d", "twolf"), ("vpr", "mcf"))
POLICIES = ("icount", "flush", "mlp_flush")


def run_ipc_stacks():
    cfg = bench_config(num_threads=2)
    budget = bench_commits()
    rows = []
    for names in MLP_PAIRS + MIX_PAIRS:
        for policy in POLICIES:
            r = evaluate_workload(names, cfg, policy, budget)
            rows.append((names, policy, r.ipcs))
    return rows


def test_fig11_12_ipc_stacks(benchmark):
    rows = benchmark.pedantic(run_ipc_stacks, rounds=1, iterations=1)
    print_header("Figures 11/12 — per-thread IPC stacks")
    print(f"{'workload':<18} {'policy':<11} {'IPC(t0)':>8} {'IPC(t1)':>8} "
          f"{'total':>7}")
    by_key = {}
    for names, policy, ipcs in rows:
        by_key[(names, policy)] = ipcs
        print(f"{'-'.join(names):<18} {policy:<11} {ipcs[0]:>8.3f} "
              f"{ipcs[1]:>8.3f} {sum(ipcs):>7.3f}")

    # The paper's Figure 11 signature on mcf-galgel: the MLP-aware flush
    # preserves mcf's IPC better than blind flush does.
    mcf_flush = by_key[(("mcf", "galgel"), "flush")][0]
    mcf_aware = by_key[(("mcf", "galgel"), "mlp_flush")][0]
    print(f"\nmcf IPC under flush={mcf_flush:.3f} vs mlp_flush={mcf_aware:.3f}"
          " (paper: mlp_flush keeps mcf near ICOUNT level)")
    assert mcf_aware >= mcf_flush * 0.95
