"""Extension (paper §7.2): runahead threads vs. the flush family.

Ramirez et al. (HPCA 2008) report that runahead threads beat flush-based
policies because a runahead thread clogs no resources while still exposing
its MLP through prefetching.  The paper proposes combining the two: use the
MLP distance predictor to decide *whether* runahead is worth the refetch
energy — flush when the predicted distance is small, run ahead when large.

Expected shape: on MLP-intensive mixes, runahead ≥ flush-family STP and
ANTT; the MLP-gated hybrid tracks plain runahead while entering runahead
less often (it serves short-distance episodes with the cheaper flush).
"""

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import compare_policies, summarize_policies
from repro.experiments.policy_comparison import format_summary
from repro.experiments.runner import run_workload

POLICIES = ("icount", "flush", "mlp_flush", "runahead", "mlp_runahead")
WORKLOADS = (("mcf", "swim"), ("mcf", "galgel"), ("lucas", "fma3d"),
             ("swim", "twolf"), ("vpr", "mcf"))


def run_comparison():
    cfg = bench_config(num_threads=2)
    budget = bench_commits()
    cells = compare_policies(WORKLOADS, POLICIES, cfg, budget)
    summary = summarize_policies(cells, WORKLOADS, POLICIES)
    entries = {}
    for policy in ("runahead", "mlp_runahead"):
        stats, _ = run_workload(("mcf", "swim"), cfg, policy, budget)
        entries[policy] = sum(t.runahead_entries for t in stats.threads)
    return summary, entries


def test_ext_runahead_vs_flush(benchmark):
    summary, entries = benchmark.pedantic(run_comparison, rounds=1,
                                          iterations=1)
    print_header("Extension — runahead threads vs flush policies "
                 "(MLP/mixed 2-thread workloads)")
    print(format_summary(summary))
    print(f"\nrunahead episodes on mcf-swim: plain={entries['runahead']}, "
          f"MLP-gated={entries['mlp_runahead']}")
    print("\nReading: runahead frees resources like flush but keeps the "
          "thread prefetching, so it wins on memory-bound mixes.  The "
          "MLP-gated hybrid serves short-distance misses with the cheap "
          "flush path; on pairs whose misses are uniformly long-distance "
          "(mcf-swim) the gate rarely fires and episode counts track "
          "plain runahead (see examples/runahead_hybrid.py for the "
          "threshold sweep where the trade-off is visible).")
    # Shape assertions (Ramirez et al. + paper §7.2 hypothesis):
    assert summary["runahead"][0] > summary["flush"][0], \
        "runahead should out-throughput blind flush on MLP-heavy mixes"
    assert summary["runahead"][1] < summary["icount"][1], \
        "runahead should improve turnaround over ICOUNT"
    hybrid_stp = summary["mlp_runahead"][0]
    assert hybrid_stp > summary["mlp_flush"][0] * 0.98, \
        "the MLP-gated hybrid should not lose to its flush fallback"
    # On uniformly long-distance pairs the gate rarely fires, so counts
    # track plain runahead rather than dropping; they must not explode.
    assert entries["mlp_runahead"] <= entries["runahead"] * 1.25, \
        "gating must not materially increase runahead episodes"
