"""Ablation (paper §4.2 future work): dependence-aware LLSR.

The paper's LLSR "does not make a distinction between dependent and
independent long-latency loads", so dependent-miss chains (pointer chasing)
inflate the measured MLP distance: the thread is granted window it cannot
convert into overlap.  §4.2 names excluding dependent loads as future
work; ``dependence_aware=True`` implements it.

Expected shape: on chase-dominated programs (mcf) a visible fraction of
LLSR insertions is suppressed and predicted distances shrink, so MLP-aware
flush holds fewer resources — the co-runner gains.  On stream programs
(swim) nothing is suppressed and results are unchanged.
"""

from dataclasses import replace

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import evaluate_workload
from repro.experiments.runner import clear_baseline_cache, run_workload

WORKLOADS = (("mcf", "twolf"), ("swim", "twolf"))


def _config(dep_aware):
    cfg = bench_config(2)
    return replace(cfg, predictors=replace(cfg.predictors,
                                           dependence_aware=dep_aware))


def run_ablation():
    budget = bench_commits()
    rows = []
    for dep_aware in (False, True):
        cfg = _config(dep_aware)
        clear_baseline_cache(disk=False)
        for names in WORKLOADS:
            result = evaluate_workload(names, cfg, "mlp_flush", budget)
            _, core = run_workload(names, cfg, "mlp_flush", budget)
            llsr = core.threads[0].llsr
            measured = [d for _, d in llsr.measured]
            rows.append({
                "dep_aware": dep_aware,
                "workload": "-".join(names),
                "stp": result.stp,
                "antt": result.antt,
                "suppressed": llsr.suppressed,
                "mean_distance": (sum(measured) / len(measured)
                                  if measured else 0.0),
            })
    clear_baseline_cache(disk=False)
    return rows


def test_ablation_dependence_aware_llsr(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_header("Ablation — plain vs dependence-aware LLSR (mlp_flush)")
    print(f"{'LLSR':<12} {'workload':<12} {'STP':>7} {'ANTT':>8} "
          f"{'suppressed':>11} {'mean dist':>10}")
    for r in rows:
        label = "dep-aware" if r["dep_aware"] else "plain"
        print(f"{label:<12} {r['workload']:<12} {r['stp']:>7.3f} "
              f"{r['antt']:>8.3f} {r['suppressed']:>11} "
              f"{r['mean_distance']:>10.1f}")
    print("\nReading: dependent chase misses cannot overlap, so counting "
          "them only buys mcf window it cannot use; filtering them "
          "returns that window to the co-runner.")
    by_key = {(r["dep_aware"], r["workload"]): r for r in rows}
    assert by_key[(True, "mcf-twolf")]["suppressed"] > 0, \
        "mcf's chase misses must be recognized as dependent"
    assert by_key[(False, "mcf-twolf")]["suppressed"] == 0, \
        "the plain LLSR must not filter anything"
    assert by_key[(True, "swim-twolf")]["suppressed"] <= \
        by_key[(True, "mcf-twolf")]["suppressed"], \
        "stream misses are independent; suppression should be rare vs mcf"
    # (The per-PC distance-shrink property is verified under ICOUNT in
    # tests/test_llsr_dependence.py, where the commit streams are
    # identical; under mlp_flush the runs diverge, so means can move
    # either way — the table above records what actually happened.)
