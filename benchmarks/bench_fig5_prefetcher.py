"""Figure 5: single-threaded IPC with and without the hardware prefetcher.

The paper reports a 20.2% harmonic-mean IPC speedup from the 8×8
stream-buffer prefetcher, with large gains concentrated in the streaming
codes.
"""

from bench_common import bench_commits, print_header
from repro.experiments.single_thread import mean_speedup, prefetcher_comparison


def run_fig5():
    rows = prefetcher_comparison(max_commits=bench_commits(10_000))
    return rows, mean_speedup(rows)


def test_fig5_prefetcher(benchmark):
    rows, hmean = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    print_header("Figure 5 — IPC with vs without hardware prefetching")
    print(f"{'benchmark':<10} {'IPC w/ pf':>10} {'IPC w/o':>9} {'speedup':>9}")
    for r in sorted(rows, key=lambda r: r.name):
        print(f"{r.name:<10} {r.ipc_with:>10.3f} {r.ipc_without:>9.3f} "
              f"{r.speedup:>8.2f}x")
    print(f"\nharmonic-mean speedup: {hmean:.3f}x   (paper: 1.202x)")
    streaming = [r for r in rows if r.name in
                 ("swim", "applu", "fma3d", "mgrid", "lucas", "wupwise")]
    assert hmean > 1.0, "prefetcher must help on average"
    assert max(r.speedup for r in streaming) > 1.2, \
        "streaming codes should benefit substantially"
