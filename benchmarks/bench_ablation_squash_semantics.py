"""Ablation (beyond the paper): squash semantics for in-flight fills.

DESIGN.md calls out a key modelling decision: when a flush squashes a load
whose memory fill is still in flight, is the fill cancelled (SMTSIM-era
squash; the paper's serialization premise) or does it complete and install
(modern hardware)?  This ablation quantifies how much of the flush-policy
behaviour rides on that choice.
"""

from dataclasses import replace

from bench_common import bench_commits, bench_config, print_header
from repro.experiments import evaluate_workload
from repro.experiments.runner import clear_baseline_cache

WORKLOADS = (("mcf", "galgel"), ("swim", "twolf"), ("lucas", "fma3d"))
POLICIES = ("flush", "mlp_flush")


def run_ablation():
    rows = []
    for cancel in (True, False):
        cfg = bench_config(2)
        cfg = replace(cfg, memory=replace(cfg.memory,
                                          cancel_squashed_fills=cancel))
        clear_baseline_cache(disk=False)
        for names in WORKLOADS:
            for policy in POLICIES:
                r = evaluate_workload(names, cfg, policy, bench_commits())
                rows.append((cancel, names, policy, r.stp, r.antt))
    clear_baseline_cache(disk=False)
    return rows


def test_ablation_squash_semantics(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_header("Ablation — cancel squashed fills (paper-era) vs "
                 "fill-survives (modern)")
    print(f"{'fills':<10} {'workload':<16} {'policy':<10} {'STP':>7} "
          f"{'ANTT':>7}")
    for cancel, names, policy, stp, antt in rows:
        label = "cancelled" if cancel else "survive"
        print(f"{label:<10} {'-'.join(names):<16} {policy:<10} "
              f"{stp:>7.3f} {antt:>7.3f}")
    print("\nReading: with fills surviving, blind flush stops destroying "
          "MLP and closes much of the gap to the MLP-aware policy — the "
          "paper's contrast depends on era-accurate squash semantics.")
    assert rows, "ablation must produce results"
