"""Figure 4: cumulative distribution of the measured MLP distance for the
six most MLP-intensive programs (128-entry LLSR, single-threaded run).

The paper's qualitative result: mcf and fma3d find their MLP at large
distances (>100 instructions), lucas at very short ones (<40), equake in
between — so a one-size window cannot fit all programs, motivating the
per-load MLP distance predictor.
"""

from bench_common import bench_commits, print_header
from repro.experiments.profile import profile_benchmark

#: The six most MLP-intensive programs by Table I MLP impact.
FIG4_PROGRAMS = ("fma3d", "applu", "swim", "mcf", "equake", "lucas")

POINTS = (0, 16, 32, 48, 64, 80, 96, 112, 127)


def run_cdfs():
    budget = bench_commits(12_000)
    return {name: profile_benchmark(name, max_commits=budget)
            .distance_cdf(list(POINTS))
            for name in FIG4_PROGRAMS}


def test_fig4_mlp_distance_cdf(benchmark):
    cdfs = benchmark.pedantic(run_cdfs, rounds=1, iterations=1)
    print_header("Figure 4 — CDF of measured MLP distance (128-entry LLSR)")
    header = "program " + "".join(f"{p:>7}" for p in POINTS)
    print(header)
    for name, cdf in cdfs.items():
        row = "".join(f"{frac:>7.2f}" for _, frac in cdf)
        print(f"{name:<8}{row}")
    print("\npaper: mcf/fma3d exploit MLP at distances >100; lucas <40; "
          "equake ~90 at the median")
    # Shape assertions: lucas short-distance, mcf long-distance.
    lucas_at_48 = dict(cdfs["lucas"])[48]
    mcf_at_48 = dict(cdfs["mcf"])[48]
    assert lucas_at_48 > 0.9, "lucas MLP should live at short distances"
    assert mcf_at_48 < 0.6, "mcf MLP should extend to long distances"
