"""Figures 6/7/8: predictor accuracy.

* Figure 6 — long-latency load predictor: correct hit/miss predictions per
  load (paper: >=94%, average 99.4%) and correct miss predictions per miss
  (>=85% for memory-intensive codes; mcf is the hard case at 59%).
* Figure 7 — binary MLP/no-MLP prediction accuracy (paper average 91.5%).
* Figure 8 — "far enough" MLP distance accuracy (paper average 87.8%).
"""

from bench_common import bench_commits, print_header
from repro.experiments.profile import profile_benchmark
from repro.workloads import TABLE_I


def run_predictor_accuracy():
    budget = bench_commits(12_000)
    return {name: profile_benchmark(name, max_commits=budget)
            for name in sorted(TABLE_I)}


def test_fig6_7_8_predictor_accuracy(benchmark):
    profiles = benchmark.pedantic(run_predictor_accuracy, rounds=1,
                                  iterations=1)
    print_header("Figures 6/7/8 — predictor accuracies")
    print(f"{'benchmark':<10} {'LLL acc':>8} {'miss acc':>9} "
          f"{'MLP binary':>11} {'MLP dist':>9}")
    for name, p in profiles.items():
        print(f"{name:<10} {p.lll_accuracy:>7.1%} {p.lll_miss_accuracy:>8.1%} "
              f"{p.mlp_binary_accuracy:>10.1%} {p.mlp_distance_accuracy:>8.1%}")

    with_loads = [p for p in profiles.values() if p.stats.threads[0].lll_pred_loads]
    avg_lll = sum(p.lll_accuracy for p in with_loads) / len(with_loads)
    mlp_heavy = [p for name, p in profiles.items()
                 if TABLE_I[name].category == "MLP"]
    avg_binary = sum(p.mlp_binary_accuracy for p in mlp_heavy) / len(mlp_heavy)
    avg_dist = sum(p.mlp_distance_accuracy for p in mlp_heavy) / len(mlp_heavy)
    print(f"\naverage LLL hit/miss accuracy: {avg_lll:.1%}  (paper: 99.4%)")
    print(f"average binary MLP accuracy (MLP codes): {avg_binary:.1%}  "
          f"(paper: 91.5%)")
    print(f"average far-enough distance accuracy (MLP codes): {avg_dist:.1%}"
          f"  (paper: 87.8%)")
    assert avg_lll > 0.90
    assert avg_binary > 0.70
