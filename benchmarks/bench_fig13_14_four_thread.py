"""Figures 13/14: STP and ANTT of the six policies on four-thread
workloads (Table III).

Paper: results mirror the two-thread case; the MLP-aware flush policy has
the best ANTT overall (12.4% better than ICOUNT, 9.5% better than flush)
with STP comparable to flush (~16% over ICOUNT).
"""

from bench_common import (
    bench_commits,
    bench_config,
    four_thread_workloads,
    print_header,
)
from repro.experiments import compare_policies, summarize_policies
from repro.experiments.policy_comparison import format_summary
from repro.policies import MAIN_COMPARISON


def run_four_thread():
    cfg = bench_config(num_threads=4)
    budget = bench_commits(6_000)
    workloads = four_thread_workloads()
    cells = compare_policies(workloads, MAIN_COMPARISON, cfg, budget)
    return summarize_policies(cells, workloads, MAIN_COMPARISON)


def test_fig13_14_four_thread_policies(benchmark):
    summary = benchmark.pedantic(run_four_thread, rounds=1, iterations=1)
    print_header("Figures 13/14 — 4-thread STP & ANTT by policy")
    print(format_summary(summary))
    print("\npaper: mlp_flush ANTT 12.4% better than ICOUNT, 9.5% better "
          "than flush; STP ~flush ~16% over ICOUNT")
    assert summary["mlp_flush"][1] < summary["icount"][1], \
        "MLP-aware flush must improve turnaround over ICOUNT"
    assert summary["mlp_flush"][0] > summary["icount"][0] * 0.95
