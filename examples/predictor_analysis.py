#!/usr/bin/env python3
"""Inspect the paper's predictors on a single benchmark (Sections 4.1-4.2).

Shows, for one program: the front-end long-latency load predictor's
accuracy (Figure 6), the MLP distance predictor's binary and far-enough
accuracy (Figures 7/8), and the measured MLP distance distribution that
the LLSR feeds it (Figure 4).

Usage:
    python examples/predictor_analysis.py [benchmark]
"""

import sys

from repro.experiments.profile import profile_benchmark
from repro.workloads import BENCHMARKS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"known: {', '.join(sorted(BENCHMARKS))}")
    print(f"profiling {name} (single-threaded, 128-entry LLSR)...")
    p = profile_benchmark(name, max_commits=15_000)

    print(f"\nIPC: {p.ipc:.3f}   long-latency loads/1K: {p.lll_per_kilo:.2f}"
          f"   MLP: {p.mlp:.2f}")

    print("\n-- long-latency load predictor (Figure 6) --")
    print(f"hit/miss accuracy per load : {p.lll_accuracy:.1%}")
    print(f"miss accuracy per miss     : {p.lll_miss_accuracy:.1%}")

    print("\n-- MLP predictor (Figures 7/8) --")
    for k, v in p.mlp_fractions.items():
        print(f"{k:<10}: {v:.1%}")
    print(f"binary accuracy            : {p.mlp_binary_accuracy:.1%}")
    print(f"far-enough distance        : {p.mlp_distance_accuracy:.1%}")

    print("\n-- measured MLP distance CDF (Figure 4) --")
    for point, frac in p.distance_cdf([0, 16, 32, 48, 64, 96, 127]):
        bar = "#" * int(frac * 40)
        print(f"<= {point:>3}: {frac:>6.1%} {bar}")


if __name__ == "__main__":
    main()
