#!/usr/bin/env python3
"""Runahead threads vs flush, and the paper's proposed hybrid (§7.2).

The paper's related-work discussion proposes gating runahead execution
with the MLP distance predictor: flush when the predicted distance is
small (runahead's refetching would buy nothing), run ahead when it is
large.  This example sweeps the gating threshold on one memory-bound pair
so you can watch the hybrid morph from pure MLP-aware flush (threshold ∞)
into pure runahead (threshold 1), and see where the blend pays.

Usage:
    python examples/runahead_hybrid.py [workload]   # e.g. mcf,swim
"""

import sys

from repro.experiments import default_config, evaluate_workload
from repro.experiments.runner import run_workload
from repro.report import format_table

THRESHOLDS = (1, 8, 16, 32, 64, 10_000)


def main() -> None:
    names = tuple((sys.argv[1] if len(sys.argv) > 1 else "mcf,swim")
                  .split(","))
    cfg = default_config(num_threads=len(names))
    budget = 8_000

    rows = []
    for policy in ("flush", "mlp_flush", "runahead"):
        result = evaluate_workload(names, cfg, policy, max_commits=budget)
        rows.append((policy, "-", result.stp, result.antt, "-"))
    for threshold in THRESHOLDS:
        result = evaluate_workload(names, cfg, "mlp_runahead",
                                   max_commits=budget,
                                   runahead_threshold=threshold)
        stats, _ = run_workload(names, cfg, "mlp_runahead",
                                max_commits=budget,
                                runahead_threshold=threshold)
        episodes = sum(t.runahead_entries for t in stats.threads)
        rows.append(("mlp_runahead", str(threshold), result.stp,
                     result.antt, str(episodes)))

    print(f"workload: {'-'.join(names)}  "
          f"(budget {budget} instructions/thread)")
    print()
    print(format_table(
        ("policy", "threshold", "STP", "ANTT", "runahead episodes"), rows))
    print()
    print("Reading: at threshold 10000 the hybrid IS mlp_flush (zero")
    print("episodes); at 1 it runs ahead on every blocked load.  In")
    print("between, short-distance misses take the cheap flush path while")
    print("long-distance bursts get runahead's prefetching — the paper's")
    print("'only in case the predicted MLP distance is large' proposal.")


if __name__ == "__main__":
    main()
