#!/usr/bin/env python3
"""Characterize benchmarks for memory-level parallelism (paper Section 2).

Reproduces the Table I methodology on any subset of the 26 SPEC CPU2000
analogs: measure the long-latency load rate, the MLP (average overlapping
long-latency loads), and the *MLP impact* — the slowdown when independent
misses are artificially serialized — then classify each program as ILP- or
MLP-intensive.

Usage:
    python examples/characterize_workloads.py [bench ...]
    python examples/characterize_workloads.py mcf swim crafty
"""

import sys

from repro.experiments.characterize import characterize, format_table

DEFAULT_SET = ("mcf", "swim", "equake", "lucas", "wupwise",
               "crafty", "vortex", "gzip")


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT_SET)
    print(f"characterizing: {', '.join(names)} "
          f"(single-threaded, no prefetcher, per the paper's Table I)")
    print()
    rows = characterize(names=names, max_commits=12_000)
    print(format_table(rows))
    print()
    mlp_like = [r.name for r in rows if r.category == "MLP"]
    print(f"MLP-intensive (serialization costs >10% of performance): "
          f"{', '.join(mlp_like) if mlp_like else 'none'}")


if __name__ == "__main__":
    main()
