#!/usr/bin/env python3
"""Quickstart: simulate one SMT workload under three fetch policies.

Runs the paper's exemplar pair — mcf (pointer-chasing, lots of MLP) next
to galgel (bursty, mostly compute) — under ICOUNT, blind flush, and the
paper's MLP-aware flush, and prints the per-thread IPCs plus the
system-level STP/ANTT metrics.

Usage:
    python examples/quickstart.py
"""

from repro.experiments import default_config, evaluate_workload

WORKLOAD = ("mcf", "galgel")
POLICIES = ("icount", "flush", "mlp_flush")


def main() -> None:
    cfg = default_config(num_threads=2)
    print(f"workload: {'-'.join(WORKLOAD)}")
    print(f"machine:  {cfg.rob_size}-entry ROB, {cfg.num_threads} threads, "
          f"L3 {cfg.memory.l3.size // 1024}KB (scaled), "
          f"MEM {cfg.memory.mem_latency} cycles")
    print()
    print(f"{'policy':<12} {'IPC mcf':>8} {'IPC galgel':>11} "
          f"{'STP':>7} {'ANTT':>7}")
    for policy in POLICIES:
        result = evaluate_workload(WORKLOAD, cfg, policy, max_commits=10_000)
        print(f"{policy:<12} {result.ipcs[0]:>8.3f} {result.ipcs[1]:>11.3f} "
              f"{result.stp:>7.3f} {result.antt:>7.3f}")
    print()
    print("Expected shape (the paper's Figure 11): blind flush sacrifices")
    print("mcf's memory-level parallelism to speed up galgel; the MLP-aware")
    print("flush keeps mcf closer to its ICOUNT speed while still giving")
    print("galgel most of the machine — better turnaround for both.")


if __name__ == "__main__":
    main()
