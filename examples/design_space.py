#!/usr/bin/env python3
"""Microarchitecture design-space exploration (paper Figures 15-18).

Sweeps main-memory latency and out-of-order window size, and reports how
ICOUNT, flush, and MLP-aware flush respond — the paper's key insight being
that MLP awareness pays off more as latencies and windows grow.

Usage:
    python examples/design_space.py [memlat|window]
"""

import sys

from repro.experiments import (
    default_config,
    memory_latency_sweep,
    window_size_sweep,
)

WORKLOADS = (("swim", "twolf"), ("vpr", "mcf"))
POLICIES = ("icount", "flush", "mlp_flush")


def show(results, axis_label):
    policies = next(iter(results.values())).keys()
    print(f"{axis_label:<8}" + "".join(f"{p:>24}" for p in policies))
    for point, summary in results.items():
        cells = "".join(f"   STP×{summary[p][0]:5.3f} ANTT×{summary[p][1]:5.3f}"
                        for p in policies)
        print(f"{point:<8}{cells}")
    print("(ratios vs ICOUNT at the same design point; STP>1 / ANTT<1 better)")


def main() -> None:
    which = (sys.argv[1] if len(sys.argv) > 1 else "memlat").lower()
    cfg = default_config(num_threads=2)
    if which == "memlat":
        print("sweeping main-memory latency (Figures 15/16)...")
        results = memory_latency_sweep(WORKLOADS, POLICIES,
                                       latencies=(200, 400, 600, 800),
                                       cfg=cfg, max_commits=5_000)
        show(results, "latency")
    elif which == "window":
        print("sweeping window size (Figures 17/18)...")
        results = window_size_sweep(WORKLOADS, POLICIES,
                                    rob_sizes=(128, 256, 512),
                                    cfg=cfg, max_commits=5_000)
        show(results, "ROB")
    else:
        raise SystemExit("pick 'memlat' or 'window'")


if __name__ == "__main__":
    main()
