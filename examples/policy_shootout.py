#!/usr/bin/env python3
"""Full fetch-policy shoot-out on a workload class (paper Figures 9/10).

Evaluates all nineteen implemented policies — the paper's six-way main
comparison, the Section 6.5 alternatives, the two partitioning schemes,
and the related-work/future-work extensions (DG/PDG, learning, MLP-aware
DCRA, CGMT, runahead) — on a group of two-thread workloads, and reports
STP (harmonic mean) and ANTT (arithmetic mean) per policy.

Usage:
    python examples/policy_shootout.py [ILP|MLP|MIX]
"""

import sys

from repro.experiments import (
    compare_policies,
    default_config,
    summarize_policies,
)
from repro.experiments.policy_comparison import format_summary
from repro.policies import POLICIES

GROUPS = {
    "ILP": (("vortex", "parser"), ("crafty", "twolf")),
    "MLP": (("mcf", "swim"), ("lucas", "fma3d"), ("swim", "mesa")),
    "MIX": (("swim", "twolf"), ("vpr", "mcf"), ("equake", "perlbmk")),
}


def main() -> None:
    label = (sys.argv[1] if len(sys.argv) > 1 else "MIX").upper()
    if label not in GROUPS:
        raise SystemExit(f"unknown group {label!r}; pick from {list(GROUPS)}")
    workloads = GROUPS[label]
    policies = tuple(sorted(POLICIES))
    print(f"{label} workloads: "
          + ", ".join("-".join(w) for w in workloads))
    print(f"policies: {', '.join(policies)}")
    print()
    cells = compare_policies(workloads, policies,
                             default_config(num_threads=2),
                             max_commits=8_000,
                             progress=print)
    print()
    summary = summarize_policies(cells, workloads, policies)
    print(format_summary(summary))


if __name__ == "__main__":
    main()
