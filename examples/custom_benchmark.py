#!/usr/bin/env python3
"""Build your own benchmark analog and measure how fetch policies treat it.

The synthetic workload generator is a public API: a
:class:`repro.workloads.BenchmarkSpec` describes a loop body from
composable kernels (independent streams for regular MLP, pointer-chase
chains for dependent misses, random bursts for clustered irregular MLP)
and the trace generator turns it into a deterministic instruction stream.

This example constructs two custom programs with identical miss *rates*
but opposite miss *structure* — one all-independent (MLP-rich), one
all-dependent (no exploitable MLP).  It demonstrates two of the paper's
points at once:

* MLP-aware flush keeps the parallel-miss program's window open while
  blind flush serializes it (§4.3);
* the plain LLSR *overestimates* the serial program's MLP — dependent
  misses ~30 instructions apart look like an MLP distance of 30 — so the
  policy grants a useless window and the co-runner suffers; §4.2 names
  this exact problem and the ``dependence_aware`` LLSR extension fixes it.

Usage:
    python examples/custom_benchmark.py
"""

from dataclasses import replace

from repro.experiments import default_config
from repro.experiments.runner import stable_seed
from repro.pipeline import SMTCore
from repro.policies import make_policy
from repro.report import format_table
from repro.workloads import BenchmarkSpec, SyntheticTrace

#: Four independent streaming arrays: misses cluster and overlap.
PARALLEL_MISSES = BenchmarkSpec(
    name="custom_parallel",
    streams=4, stream_stride=16, stream_footprint=2.0,
    int_ops=12, hot_loads=4, stores=1, cond_branches=1,
)

#: One pointer chase with consumers: every miss depends on the previous.
SERIAL_MISSES = BenchmarkSpec(
    name="custom_serial",
    chase_chains=1, chase_every=1, chase_dependents=4,
    int_ops=18, hot_loads=4, stores=1, cond_branches=1,
)


def run(spec: BenchmarkSpec, co_spec: BenchmarkSpec, policy: str,
        dep_aware: bool = False):
    cfg = default_config(num_threads=2)
    if dep_aware:
        cfg = replace(cfg, predictors=replace(cfg.predictors,
                                              dependence_aware=True))
    traces = [
        SyntheticTrace(spec, cfg.memory, seed=stable_seed(spec.name),
                       base=1 << 48, pc_base=1 << 20),
        SyntheticTrace(co_spec, cfg.memory, seed=stable_seed(co_spec.name),
                       base=2 << 48, pc_base=2 << 20),
    ]
    core = SMTCore(cfg, traces, make_policy(policy))
    stats = core.run(8_000, warmup=2_000)
    return stats, core


VARIANTS = (
    ("flush", False, "flush"),
    ("mlp_flush", False, "mlp_flush"),
    ("mlp_flush", True, "mlp_flush+dep"),
)


def main() -> None:
    co = BenchmarkSpec(name="custom_compute", int_ops=16, fp_ops=8,
                       hot_loads=4, stores=1, cond_branches=2)
    rows = []
    for spec in (PARALLEL_MISSES, SERIAL_MISSES):
        for policy, dep_aware, label in VARIANTS:
            stats, core = run(spec, co, policy, dep_aware)
            t0 = stats.threads[0]
            rows.append((spec.name, label, f"{stats.ipc(0):.3f}",
                         f"{stats.ipc(1):.3f}", f"{stats.mlp:.2f}",
                         t0.squashed))
    print("two custom programs, same miss rate, opposite structure,")
    print("each paired with the same compute-bound co-runner:\n")
    print(format_table(
        ("program", "policy", "IPC(mem)", "IPC(co)", "MLP", "squashed"),
        rows))
    print()
    print("Reading: on the parallel-miss program, mlp_flush keeps the")
    print("miss window open (memory-thread IPC several times blind")
    print("flush's).  On the serial-miss program the plain LLSR is")
    print("fooled — dependent misses 30 apart measure as distance 30 —")
    print("so mlp_flush grants a useless window and the co-runner")
    print("collapses; the §4.2 dependence-aware LLSR (mlp_flush+dep)")
    print("suppresses dependent loads and restores the co-runner.")


if __name__ == "__main__":
    main()
