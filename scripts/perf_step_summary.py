#!/usr/bin/env python3
"""Render a ``repro perf compare --json`` document as a Markdown table.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` so regression triage
starts from the run page — the calibration-normalized per-scenario
throughput is right there instead of inside a downloaded artifact.

Usage: perf_step_summary.py perf-smoke.json [>> "$GITHUB_STEP_SUMMARY"]

The input is the schema-stamped baseline document with the ``compare``
section ``cmd_perf_compare`` attaches (mode, per-scenario speedups, and
``normalized_kcycles_per_calib_s`` — simulated kilocycles per
calibration-spin-second, a machine-speed-free throughput number).
"""

from __future__ import annotations

import json
from pathlib import Path
import sys


def render(doc: dict) -> str:
    compare = doc.get("compare")
    if not isinstance(compare, dict):
        return ("## perf-smoke\n\n"
                "No `compare` section in the perf document "
                "(gate did not run to completion).\n")
    mode = compare.get("mode", "?")
    scenarios = compare.get("scenarios", {})
    normalized = compare.get("normalized_kcycles_per_calib_s", {})
    lines = [
        f"## perf-smoke ({mode} mode)",
        "",
        f"**{'OK' if compare.get('ok') else 'REGRESSED'}** — geomean "
        f"speedup vs committed baseline: "
        f"**{compare.get('geomean_speedup', '?')}x** "
        f"(machine calibration ratio "
        f"{compare.get('calibration_ratio', '?')}, gate: "
        f">{int(float(compare.get('max_regression', 0)) * 100)}% "
        f"normalized slowdown fails)",
        "",
        "| scenario | baseline | current | speedup | norm. kcyc/calib-s "
        "| status |",
        "|---|---:|---:|---:|---:|---|",
    ]
    for name in sorted(scenarios):
        entry = scenarios[name]
        status = "REGRESSED" if entry.get("regressed") else "ok"
        if entry.get("work_drift"):
            status += " (work drift!)"
        lines.append(
            f"| {name} | {entry.get('baseline_wall_s', 0):.3f}s "
            f"| {entry.get('current_wall_s', 0):.3f}s "
            f"| {entry.get('speedup', 0):.2f}x "
            f"| {normalized.get(name, '—')} "
            f"| {status} |")
    missing = compare.get("missing") or []
    if missing:
        lines += ["", f"Not in baseline yet: {', '.join(missing)}"]
    lines += ["",
              "Normalized throughput is simulated kilocycles per "
              "calibration-spin-second (machine-speed-free); the raw "
              "document is attached as the `perf-smoke-*` artifact.",
              ""]
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: perf_step_summary.py <perf-compare.json>",
              file=sys.stderr)
        return 2
    try:
        doc = json.loads(Path(argv[0]).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        # Never fail the workflow over a summary: render the problem.
        print(f"## perf-smoke\n\nCould not render summary: {exc}\n")
        return 0
    print(render(doc))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
