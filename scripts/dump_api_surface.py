#!/usr/bin/env python
"""Dump the public surface of the stable API layers, one name per line.

``repro.api`` and ``repro.registry`` are the surfaces every future
backend targets; this script enumerates them deterministically so CI can
diff the output against the committed snapshot
(``tests/data/api_surface.txt``) and fail on accidental breakage.

For each module the dump lists every ``__all__`` export, and for
exported classes the public methods/properties and dataclass fields —
so a removed export, a renamed method, and a dropped spec field all
show up as a diff.

Regenerate the snapshot after an *intentional* surface change:

    PYTHONPATH=src python scripts/dump_api_surface.py \
        > tests/data/api_surface.txt
"""

from __future__ import annotations

import dataclasses
import inspect

MODULES = ("repro.api", "repro.registry")


def _class_lines(prefix: str, cls: type) -> list[str]:
    lines = []
    if dataclasses.is_dataclass(cls):
        for f in dataclasses.fields(cls):
            lines.append(f"{prefix}.{f.name} [field]")
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        # Builtin members inherited from Exception/object (args,
        # with_traceback, add_note, ...) are interpreter surface, not ours.
        if getattr(Exception, name, None) is member \
                or getattr(object, name, None) is member:
            continue
        if dataclasses.is_dataclass(cls) and any(
                f.name == name for f in dataclasses.fields(cls)):
            continue
        if inspect.isfunction(member) or inspect.ismethod(member):
            lines.append(f"{prefix}.{name}()")
        elif isinstance(inspect.getattr_static(cls, name), property):
            lines.append(f"{prefix}.{name} [property]")
        elif not inspect.isclass(member):
            lines.append(f"{prefix}.{name}")
    return lines


def collect() -> list[str]:
    import importlib

    lines: list[str] = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for export in sorted(module.__all__):
            obj = getattr(module, export)
            prefix = f"{module_name}.{export}"
            if inspect.isclass(obj):
                lines.append(prefix)
                lines.extend(_class_lines(prefix, obj))
            elif callable(obj):
                lines.append(f"{prefix}()")
            else:
                lines.append(prefix)
    return lines


def main() -> int:
    print("\n".join(collect()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
